package mapping

import (
	"errors"
	"testing"

	"repro/internal/attrs"
	"repro/internal/graph"
	"repro/internal/hw"
)

// cabinetPlatform builds 4 nodes in 2 FCRs: cab1{n1,n2}, cab2{n3,n4}.
func cabinetPlatform(t *testing.T) *hw.Platform {
	t.Helper()
	p := hw.NewPlatform()
	layout := map[string]string{"n1": "cab1", "n2": "cab1", "n3": "cab2", "n4": "cab2"}
	for _, n := range []string{"n1", "n2", "n3", "n4"} {
		if err := p.AddNode(hw.Node{Name: n, FCR: layout[n]}); err != nil {
			t.Fatal(err)
		}
	}
	names := p.Nodes()
	for i := range names {
		for j := i + 1; j < len(names); j++ {
			if err := p.Link(names[i], names[j], 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	return p
}

func critGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New()
	crits := map[string]float64{"critA": 15, "critB": 14, "lo1": 2, "lo2": 1}
	for n, c := range crits {
		if err := g.AddNode(n, attrs.New(map[attrs.Kind]float64{attrs.Criticality: c})); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestAssignCriticalityAwareSeparatesFCRs(t *testing.T) {
	g := critGraph(t)
	p := cabinetPlatform(t)
	asg, err := AssignCriticalityAware(g, p, nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	fcr := func(cluster string) string {
		node, err := p.Node(asg[cluster])
		if err != nil {
			t.Fatal(err)
		}
		return node.FCR
	}
	if fcr("critA") == fcr("critB") {
		t.Errorf("critical clusters share FCR %s", fcr("critA"))
	}
	pairs, err := CriticalPairsSharedFCR(g, asg, p, 10)
	if err != nil {
		t.Fatal(err)
	}
	if pairs != 0 {
		t.Errorf("critical pairs sharing FCR = %d, want 0", pairs)
	}
}

func TestPlainImportancePlacementMayShareFCR(t *testing.T) {
	// The ablation: the standard placement (FCR-blind) puts the two
	// critical clusters on n1/n2 — the same cabinet.
	g := critGraph(t)
	p := cabinetPlatform(t)
	asg, err := AssignByImportance(g, p, defaultWeights(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := CriticalPairsSharedFCR(g, asg, p, 10)
	if err != nil {
		t.Fatal(err)
	}
	if pairs == 0 {
		t.Skip("FCR-blind placement happened to separate FCRs on this layout")
	}
	if pairs != 1 {
		t.Errorf("shared-FCR pairs = %d", pairs)
	}
}

func TestAssignCriticalityAwareErrors(t *testing.T) {
	g := critGraph(t)
	small := hw.NewPlatform()
	if err := small.AddNode(hw.Node{Name: "only", FCR: "c"}); err != nil {
		t.Fatal(err)
	}
	if _, err := AssignCriticalityAware(g, small, nil, 10); !errors.Is(err, ErrTooManyClusters) {
		t.Errorf("err = %v", err)
	}
	p := cabinetPlatform(t)
	req := Requirements{"critA": {"nonexistent"}}
	if _, err := AssignCriticalityAware(g, p, req, 10); !errors.Is(err, ErrNoFeasibleNode) {
		t.Errorf("err = %v", err)
	}
}

func TestCriticalPairsSharedFCRUnknownNode(t *testing.T) {
	g := critGraph(t)
	p := cabinetPlatform(t)
	if _, err := CriticalPairsSharedFCR(g, Assignment{"critA": "ghost"}, p, 10); err == nil {
		t.Error("unknown node accepted")
	}
}
