// Package mapping assigns condensed SW clusters to HW processors and
// evaluates the "goodness" of a mapping per ICDCS 1998 §5.3–5.4.
//
// The goodness criteria of §5.3:
//
//   - Satisfaction of constraints — absolute semantic/temporal/resource
//     constraints; always the primary concern.
//   - Containment of faults — FCMs that influence each other strongly
//     share a node so that cross-node interaction (and hence fault
//     propagation across HW nodes) is minimized.
//   - Criticality — critical processes sit on distinct HW nodes and are
//     combined only with non-critical ones.
//
// Two satisficing assignment heuristics are provided, following §5.4:
// Approach A orders clusters by node importance; Approach B proceeds
// lexicographically over attributes in decreasing importance.
package mapping

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/attrs"
	"repro/internal/graph"
	"repro/internal/hw"
)

// Errors returned by assignment and evaluation.
var (
	ErrTooManyClusters = errors.New("mapping: more clusters than HW nodes")
	ErrNoFeasibleNode  = errors.New("mapping: no HW node satisfies a cluster's requirements")
)

// Requirements maps base SW node names to the HW resources they need
// (e.g. the paper's "need for a resource present on only one processor").
type Requirements map[string][]string

// forCluster unions the requirements of a cluster's members.
func (r Requirements) forCluster(clusterID string) []string {
	seen := map[string]bool{}
	var out []string
	for _, m := range graph.Members(clusterID) {
		for _, res := range r[m] {
			if !seen[res] {
				seen[res] = true
				out = append(out, res)
			}
		}
	}
	sort.Strings(out)
	return out
}

// Assignment maps each SW cluster id to a HW node name.
type Assignment map[string]string

// Clusters returns the assigned cluster ids, sorted.
func (a Assignment) Clusters() []string {
	out := make([]string, 0, len(a))
	for c := range a {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// NodeOf returns the HW node hosting the given base SW node name (searching
// cluster members), or "" if not found.
func (a Assignment) NodeOf(base string) string {
	for cluster, node := range a {
		for _, m := range graph.Members(cluster) {
			if m == base {
				return node
			}
		}
	}
	return ""
}

// Alternative is one feasible-but-not-chosen HW node of a placement
// decision, with the communication cost the chosen node beat.
type Alternative struct {
	Node string
	Cost float64
}

// Decision records one cluster-to-processor choice of a placement pass:
// the node picked, the influence-weighted communication cost it was
// picked at, and every other feasible node with its cost — the provenance
// the run ledger preserves.
type Decision struct {
	Cluster      string
	Node         string
	Cost         float64
	Alternatives []Alternative
}

// placementDecisions greedily assigns ordered clusters to HW nodes. Each
// cluster goes to an unused node that offers its required resources; among
// valid nodes it picks the one minimizing influence-weighted communication
// distance to already-placed clusters (the dilation concern of §6), with
// name order breaking ties. The returned decisions record, per cluster,
// the chosen node and the feasible alternatives it beat.
func placementDecisions(order []string, g *graph.Graph, p *hw.Platform, req Requirements) (Assignment, []Decision, error) {
	if len(order) > p.NumNodes() {
		return nil, nil, fmt.Errorf("%w: %d clusters, %d nodes", ErrTooManyClusters, len(order), p.NumNodes())
	}
	asg := make(Assignment, len(order))
	used := map[string]bool{}
	decisions := make([]Decision, 0, len(order))
	for _, cluster := range order {
		needs := req.forCluster(cluster)
		// Fix the float accumulation order of the cost sum below: summing
		// over the assignment map directly lets map iteration perturb the
		// last bits of equal costs, flipping tie-breaks between runs.
		placed := asg.Clusters()
		bestNode, bestCost, bestRes := "", 0.0, 0
		var feasible []Alternative
		for _, nodeName := range p.Nodes() {
			if used[nodeName] {
				continue
			}
			node, err := p.Node(nodeName)
			if err != nil {
				return nil, nil, err
			}
			ok := true
			for _, res := range needs {
				if !node.HasResource(res) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			cost := 0.0
			for _, pc := range placed {
				m := g.MutualInfluence(cluster, pc)
				if m <= 0 {
					continue
				}
				d, conn := p.Distance(nodeName, asg[pc])
				if !conn {
					d = float64(p.NumNodes()) // disconnected penalty
				}
				cost += m * d
			}
			feasible = append(feasible, Alternative{Node: nodeName, Cost: cost})
			// Prefer lower communication cost; among equal costs prefer
			// the node with the fewest resources, so scarce resources stay
			// free for the clusters that need them (the paper's "resource
			// present on only one processor" complication).
			if bestNode == "" || cost < bestCost ||
				(cost == bestCost && len(node.Resources) < bestRes) {
				bestNode, bestCost, bestRes = nodeName, cost, len(node.Resources)
			}
		}
		if bestNode == "" {
			return nil, nil, fmt.Errorf("%w: cluster %s needs %v", ErrNoFeasibleNode, cluster, needs)
		}
		asg[cluster] = bestNode
		used[bestNode] = true
		decisions = append(decisions, Decision{
			Cluster:      cluster,
			Node:         bestNode,
			Cost:         bestCost,
			Alternatives: beaten(feasible, bestNode),
		})
	}
	return asg, decisions, nil
}

// beaten filters the chosen node out of the feasible candidates, leaving
// the alternatives a placement decision beat (in platform node order).
func beaten(feasible []Alternative, chosen string) []Alternative {
	var out []Alternative
	for _, alt := range feasible {
		if alt.Node != chosen {
			out = append(out, alt)
		}
	}
	return out
}

// AssignByImportance implements Approach A of §5.4: "Evaluate importance of
// each SW node based on its attributes. Map 'most important' SW node onto a
// HW node such that all its resource requirements are satisfied."
func AssignByImportance(g *graph.Graph, p *hw.Platform, w attrs.Weights, req Requirements) (Assignment, error) {
	asg, _, err := AssignByImportanceDetailed(g, p, w, req)
	return asg, err
}

// AssignByImportanceDetailed is AssignByImportance plus the per-cluster
// decision trail (chosen node, cost, beaten alternatives).
func AssignByImportanceDetailed(g *graph.Graph, p *hw.Platform, w attrs.Weights, req Requirements) (Assignment, []Decision, error) {
	order := g.Nodes()
	sort.SliceStable(order, func(i, j int) bool {
		ii, ij := w.Importance(g.Attrs(order[i])), w.Importance(g.Attrs(order[j]))
		if ii != ij {
			return ii > ij
		}
		return order[i] < order[j]
	})
	return placementDecisions(order, g, p, req)
}

// AssignLexicographic implements Approach B of §5.4: "List attributes in
// decreasing importance, and proceed lexicographically. The most important
// attribute is considered first (say criticality) … the next most important
// attribute is considered (breaking ties) and so on."
func AssignLexicographic(g *graph.Graph, p *hw.Platform, kinds []attrs.Kind, req Requirements) (Assignment, error) {
	asg, _, err := AssignLexicographicDetailed(g, p, kinds, req)
	return asg, err
}

// AssignLexicographicDetailed is AssignLexicographic plus the per-cluster
// decision trail.
func AssignLexicographicDetailed(g *graph.Graph, p *hw.Platform, kinds []attrs.Kind, req Requirements) (Assignment, []Decision, error) {
	if len(kinds) == 0 {
		kinds = []attrs.Kind{attrs.Criticality, attrs.FaultTolerance}
	}
	order := g.Nodes()
	sort.SliceStable(order, func(i, j int) bool {
		ai, aj := g.Attrs(order[i]), g.Attrs(order[j])
		for _, k := range kinds {
			vi, vj := ai.Value(k), aj.Value(k)
			if vi != vj {
				return vi > vj
			}
		}
		return order[i] < order[j]
	})
	return placementDecisions(order, g, p, req)
}

// Report quantifies the goodness of a mapping per §5.3.
type Report struct {
	// ConstraintsOK is true when every cluster is assigned to a distinct
	// node satisfying its resource requirements.
	ConstraintsOK bool
	// Violations lists human-readable constraint failures.
	Violations []string
	// CrossInfluence is the total influence between FCMs on different HW
	// nodes (lower = better containment). Measured over the original,
	// pre-reduction graph.
	CrossInfluence float64
	// InternalInfluence is the influence contained within HW nodes.
	InternalInfluence float64
	// Containment is InternalInfluence / (Internal + Cross); 1 when all
	// influence is contained (or there is none).
	Containment float64
	// MaxNodeCriticality is the largest summed criticality hosted by one
	// HW node (lower = better criticality dispersion).
	MaxNodeCriticality float64
	// CriticalPairsColocated counts pairs of processes at or above the
	// criticality threshold sharing a HW node.
	CriticalPairsColocated int
	// CriticalPairsSharedFCR counts critical pairs whose HW nodes share a
	// fault containment region (>= CriticalPairsColocated on platforms
	// with multi-node FCRs; equal when every node is its own FCR).
	CriticalPairsSharedFCR int
	// CommCost is the dilation: Σ influence(u→v) × distance(hw(u), hw(v))
	// over cross-node edges.
	CommCost float64
}

// EvalConfig parameterises Evaluate.
type EvalConfig struct {
	// CriticalThreshold marks a process as critical for the colocated-pair
	// count. Zero disables the count.
	CriticalThreshold float64
	// Requirements, when non-nil, are re-checked against the platform.
	Requirements Requirements
	// BaseCriticality maps base node names to their criticality. When nil,
	// criticality is read from full's node attributes.
	BaseCriticality map[string]float64
}

// Evaluate scores an assignment of clusters (over the condensed graph's
// node ids) against the original full influence graph and the platform.
func Evaluate(full *graph.Graph, asg Assignment, p *hw.Platform, cfg EvalConfig) Report {
	rep := Report{ConstraintsOK: true}

	// Constraint pass: distinct nodes, resources available.
	seen := map[string]string{}
	for _, cluster := range asg.Clusters() {
		nodeName := asg[cluster]
		if prev, dup := seen[nodeName]; dup {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("HW node %s hosts both %s and %s", nodeName, prev, cluster))
		}
		seen[nodeName] = cluster
		node, err := p.Node(nodeName)
		if err != nil {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("cluster %s assigned to unknown node %s", cluster, nodeName))
			continue
		}
		if cfg.Requirements != nil {
			for _, res := range cfg.Requirements.forCluster(cluster) {
				if !node.HasResource(res) {
					rep.Violations = append(rep.Violations,
						fmt.Sprintf("cluster %s needs %s, absent on %s", cluster, res, nodeName))
				}
			}
		}
	}

	// Base-node -> HW-node map; also detect unassigned bases present in
	// the full graph.
	hwOf := map[string]string{}
	for cluster, nodeName := range asg {
		for _, m := range graph.Members(cluster) {
			hwOf[m] = nodeName
		}
	}
	for _, base := range full.Nodes() {
		if hwOf[base] == "" {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("base node %s unassigned", base))
		}
	}
	rep.ConstraintsOK = len(rep.Violations) == 0

	// Containment + dilation over the full graph.
	for _, e := range full.Edges() {
		if e.Replica {
			continue
		}
		hu, hv := hwOf[e.From], hwOf[e.To]
		if hu == "" || hv == "" {
			continue
		}
		if hu == hv {
			rep.InternalInfluence += e.Weight
			continue
		}
		rep.CrossInfluence += e.Weight
		d, conn := p.Distance(hu, hv)
		if !conn {
			d = float64(p.NumNodes())
		}
		rep.CommCost += e.Weight * d
	}
	if total := rep.InternalInfluence + rep.CrossInfluence; total > 0 {
		rep.Containment = rep.InternalInfluence / total
	} else {
		rep.Containment = 1
	}

	// Criticality dispersion.
	critOf := func(base string) float64 {
		if cfg.BaseCriticality != nil {
			return cfg.BaseCriticality[base]
		}
		return full.Attrs(base).Value(attrs.Criticality)
	}
	// Accumulate in sorted base order: float addition is order-sensitive
	// in the last ulps, and map iteration would make MaxNodeCriticality
	// differ between byte-identical runs.
	bases := make([]string, 0, len(hwOf))
	for base := range hwOf {
		bases = append(bases, base)
	}
	sort.Strings(bases)
	perNode := map[string][]float64{}
	for _, base := range bases {
		perNode[hwOf[base]] = append(perNode[hwOf[base]], critOf(base))
	}
	for _, crits := range perNode {
		sum := 0.0
		critical := 0
		for _, c := range crits {
			sum += c
			if cfg.CriticalThreshold > 0 && c >= cfg.CriticalThreshold {
				critical++
			}
		}
		if sum > rep.MaxNodeCriticality {
			rep.MaxNodeCriticality = sum
		}
		if critical > 1 {
			rep.CriticalPairsColocated += critical * (critical - 1) / 2
		}
	}
	if cfg.CriticalThreshold > 0 {
		perFCR := map[string]int{}
		for nodeName, crits := range perNode {
			node, err := p.Node(nodeName)
			if err != nil {
				continue // unknown nodes already reported as violations
			}
			for _, c := range crits {
				if c >= cfg.CriticalThreshold {
					perFCR[node.FCR]++
				}
			}
		}
		for _, k := range perFCR {
			rep.CriticalPairsSharedFCR += k * (k - 1) / 2
		}
	}
	return rep
}
