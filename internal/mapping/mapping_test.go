package mapping

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/attrs"
	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/hw"
	"repro/internal/spec"
)

// reducedPaper returns (full replicated graph, condensed graph) for the
// worked example under H1.
func reducedPaper(t *testing.T) (*graph.Graph, *graph.Graph) {
	t.Helper()
	sys := spec.PaperExample()
	g, err := sys.Graph()
	if err != nil {
		t.Fatal(err)
	}
	exp, err := cluster.Expand(g, sys.Jobs())
	if err != nil {
		t.Fatal(err)
	}
	full := exp.Graph.Clone()
	c := cluster.NewCondenser(exp.Graph, exp.Jobs)
	if err := c.ReduceByInfluence(6); err != nil {
		t.Fatal(err)
	}
	return full, c.G
}

func completePlatform(t *testing.T, n int) *hw.Platform {
	t.Helper()
	p, err := hw.Complete(n)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAssignByImportancePaperExample(t *testing.T) {
	full, condensed := reducedPaper(t)
	p := completePlatform(t, 6)
	asg, err := AssignByImportance(condensed, p, defaultWeights(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(asg) != 6 {
		t.Fatalf("assigned %d clusters, want 6", len(asg))
	}
	// Bijective onto the platform.
	usedNodes := map[string]bool{}
	for _, node := range asg {
		if usedNodes[node] {
			t.Errorf("node %s used twice", node)
		}
		usedNodes[node] = true
	}
	rep := Evaluate(full, asg, p, EvalConfig{CriticalThreshold: 10})
	if !rep.ConstraintsOK {
		t.Errorf("violations: %v", rep.Violations)
	}
	if rep.Containment <= 0 || rep.Containment >= 1 {
		t.Errorf("containment = %g, want in (0,1)", rep.Containment)
	}
	// p1 replicas are critical (C=15); each sits alone or with
	// non-criticals, so no colocated critical pair should involve p1.
	if rep.CriticalPairsColocated > 2 {
		t.Errorf("critical pairs colocated = %d", rep.CriticalPairsColocated)
	}
}

func TestAssignmentNodeOf(t *testing.T) {
	_, condensed := reducedPaper(t)
	p := completePlatform(t, 6)
	asg, err := AssignByImportance(condensed, p, defaultWeights(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	if node := asg.NodeOf("p1a"); node == "" {
		t.Error("p1a not located")
	}
	if node := asg.NodeOf("ghost"); node != "" {
		t.Errorf("ghost located at %s", node)
	}
	// Replicas on distinct HW nodes (§5.2's whole point).
	if asg.NodeOf("p1a") == asg.NodeOf("p1b") || asg.NodeOf("p1b") == asg.NodeOf("p1c") {
		t.Error("p1 replicas share a HW node")
	}
}

func TestAssignTooManyClusters(t *testing.T) {
	_, condensed := reducedPaper(t)
	p := completePlatform(t, 3)
	if _, err := AssignByImportance(condensed, p, defaultWeights(t), nil); !errors.Is(err, ErrTooManyClusters) {
		t.Errorf("err = %v, want ErrTooManyClusters", err)
	}
}

func TestAssignWithResourceRequirements(t *testing.T) {
	g := graph.New()
	if err := g.AddNode("a", attrs.New(map[attrs.Kind]float64{attrs.Criticality: 5})); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode("b", attrs.New(map[attrs.Kind]float64{attrs.Criticality: 1})); err != nil {
		t.Fatal(err)
	}
	p := hw.NewPlatform()
	if err := p.AddNode(hw.Node{Name: "plain"}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddNode(hw.Node{Name: "rich", Resources: map[string]bool{"adc": true}}); err != nil {
		t.Fatal(err)
	}
	if err := p.Link("plain", "rich", 1); err != nil {
		t.Fatal(err)
	}
	req := Requirements{"a": {"adc"}}
	asg, err := AssignByImportance(g, p, defaultWeights(t), req)
	if err != nil {
		t.Fatal(err)
	}
	if asg["a"] != "rich" {
		t.Errorf("a -> %s, want rich", asg["a"])
	}
	// Conflicting requirement: both need the single adc node.
	req["b"] = []string{"adc"}
	if _, err := AssignByImportance(g, p, defaultWeights(t), req); !errors.Is(err, ErrNoFeasibleNode) {
		t.Errorf("err = %v, want ErrNoFeasibleNode", err)
	}
}

func TestPlacementMinimisesDilation(t *testing.T) {
	// Ring platform: two strongly coupled clusters should land adjacent.
	g := graph.New()
	for _, n := range []string{"x", "y", "z"} {
		if err := g.AddNode(n, attrs.Set{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.SetEdge("x", "y", 0.9); err != nil {
		t.Fatal(err)
	}
	if err := g.SetEdge("y", "x", 0.9); err != nil {
		t.Fatal(err)
	}
	ring, err := hw.Ring(6)
	if err != nil {
		t.Fatal(err)
	}
	asg, err := AssignByImportance(g, ring, defaultWeights(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	d, ok := ring.Distance(asg["x"], asg["y"])
	if !ok || d != 1 {
		t.Errorf("x and y placed %g apart, want 1", d)
	}
}

func TestAssignLexicographicCriticalityFirst(t *testing.T) {
	full, condensed := reducedPaper(t)
	p := completePlatform(t, 6)
	asg, err := AssignLexicographic(condensed, p, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep := Evaluate(full, asg, p, EvalConfig{CriticalThreshold: 10})
	if !rep.ConstraintsOK {
		t.Errorf("violations: %v", rep.Violations)
	}
}

func TestEvaluateDetectsViolations(t *testing.T) {
	full, _ := reducedPaper(t)
	p := completePlatform(t, 6)
	// Hand-build a bad assignment: two clusters on one node, one base
	// unassigned, unknown HW node.
	asg := Assignment{
		"{p1a,p2a}":   "hw1",
		"{p1b,p2b}":   "hw1",
		"p1c":         "hw2",
		"{p3a,p4,p5}": "hw3",
		"p3b":         "hw9", // unknown
		"{p6,p7,p8}":  "hw4",
	}
	rep := Evaluate(full, asg, p, EvalConfig{})
	if rep.ConstraintsOK {
		t.Fatal("violations not detected")
	}
	joined := strings.Join(rep.Violations, "; ")
	for _, want := range []string{"hosts both", "unknown node"} {
		if !strings.Contains(joined, want) {
			t.Errorf("violations %q missing %q", joined, want)
		}
	}
}

func TestEvaluateContainmentArithmetic(t *testing.T) {
	// Two nodes, one edge each way; colocate them -> full containment.
	g := graph.New()
	for _, n := range []string{"a", "b"} {
		if err := g.AddNode(n, attrs.Set{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.SetEdge("a", "b", 0.4); err != nil {
		t.Fatal(err)
	}
	if err := g.SetEdge("b", "a", 0.1); err != nil {
		t.Fatal(err)
	}
	p := completePlatform(t, 2)
	together := Assignment{"{a,b}": "hw1"}
	rep := Evaluate(g, together, p, EvalConfig{})
	if rep.CrossInfluence != 0 || math.Abs(rep.InternalInfluence-0.5) > 1e-12 || rep.Containment != 1 {
		t.Errorf("together: %+v", rep)
	}
	apart := Assignment{"a": "hw1", "b": "hw2"}
	rep = Evaluate(g, apart, p, EvalConfig{})
	if math.Abs(rep.CrossInfluence-0.5) > 1e-12 || rep.Containment != 0 {
		t.Errorf("apart: %+v", rep)
	}
	// Unit distances: comm cost equals cross influence.
	if math.Abs(rep.CommCost-0.5) > 1e-12 {
		t.Errorf("comm cost = %g, want 0.5", rep.CommCost)
	}
}

func TestEvaluateCriticalityMetrics(t *testing.T) {
	g := graph.New()
	crit := map[string]float64{"a": 10, "b": 10, "c": 1}
	for n, cv := range crit {
		if err := g.AddNode(n, attrs.New(map[attrs.Kind]float64{attrs.Criticality: cv})); err != nil {
			t.Fatal(err)
		}
	}
	p := completePlatform(t, 2)
	asg := Assignment{"{a,b}": "hw1", "c": "hw2"}
	rep := Evaluate(g, asg, p, EvalConfig{CriticalThreshold: 5})
	if rep.MaxNodeCriticality != 20 {
		t.Errorf("MaxNodeCriticality = %g, want 20", rep.MaxNodeCriticality)
	}
	if rep.CriticalPairsColocated != 1 {
		t.Errorf("CriticalPairsColocated = %d, want 1", rep.CriticalPairsColocated)
	}
	// Separating the critical pair clears the metric.
	asg = Assignment{"{a,c}": "hw1", "b": "hw2"}
	rep = Evaluate(g, asg, p, EvalConfig{CriticalThreshold: 5})
	if rep.CriticalPairsColocated != 0 {
		t.Errorf("CriticalPairsColocated = %d, want 0", rep.CriticalPairsColocated)
	}
}

func TestEvaluateBaseCriticalityOverride(t *testing.T) {
	g := graph.New()
	if err := g.AddNode("a", attrs.Set{}); err != nil {
		t.Fatal(err)
	}
	p := completePlatform(t, 1)
	asg := Assignment{"a": "hw1"}
	rep := Evaluate(g, asg, p, EvalConfig{BaseCriticality: map[string]float64{"a": 42}})
	if rep.MaxNodeCriticality != 42 {
		t.Errorf("MaxNodeCriticality = %g, want 42", rep.MaxNodeCriticality)
	}
}

func TestApproachBBeatsAOnCriticalityDispersion(t *testing.T) {
	// The paper's motivation for Approach B: criticality-driven reduction
	// spreads criticality more evenly than influence-driven reduction.
	sys := spec.PaperExample()
	g, err := sys.Graph()
	if err != nil {
		t.Fatal(err)
	}
	run := func(reduce func(c *cluster.Condenser) error) Report {
		exp, err := cluster.Expand(g, sys.Jobs())
		if err != nil {
			t.Fatal(err)
		}
		full := exp.Graph.Clone()
		c := cluster.NewCondenser(exp.Graph, exp.Jobs)
		if err := reduce(c); err != nil {
			t.Fatal(err)
		}
		p := completePlatform(t, 6)
		asg, err := AssignByImportance(c.G, p, defaultWeights(t), nil)
		if err != nil {
			t.Fatal(err)
		}
		return Evaluate(full, asg, p, EvalConfig{CriticalThreshold: 10})
	}
	repA := run(func(c *cluster.Condenser) error { return c.ReduceByInfluence(6) })
	repB := run(func(c *cluster.Condenser) error { return c.ReduceByCriticality(6) })
	if repB.MaxNodeCriticality > repA.MaxNodeCriticality {
		t.Errorf("Approach B criticality dispersion (%g) worse than A (%g)",
			repB.MaxNodeCriticality, repA.MaxNodeCriticality)
	}
	if repA.CrossInfluence > repB.CrossInfluence {
		t.Errorf("Approach A containment (cross %g) worse than B (cross %g)",
			repA.CrossInfluence, repB.CrossInfluence)
	}
}

func TestRequirementsForCluster(t *testing.T) {
	req := Requirements{"a": {"io", "adc"}, "b": {"io"}}
	got := req.forCluster("{a,b}")
	if strings.Join(got, ",") != "adc,io" {
		t.Errorf("forCluster = %v", got)
	}
	if got := req.forCluster("c"); len(got) != 0 {
		t.Errorf("empty requirements = %v", got)
	}
}

func defaultWeights(t *testing.T) attrs.Weights {
	t.Helper()
	w, err := attrs.DefaultWeights()
	if err != nil {
		t.Fatal(err)
	}
	return w
}
