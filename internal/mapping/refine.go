package mapping

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/hw"
)

// Refine improves an assignment's communication dilation by local search,
// the post-pass §6 sketches: "If communication costs are high, then
// dilation of the mapping may be considered to address performance.
// Further heuristics can be used to map SW nodes with high communication
// costs onto (the same or) neighboring HW nodes."
//
// The search repeatedly evaluates two move kinds — swapping the HW nodes
// of two clusters, and relocating a cluster to a free node — and applies
// the best strict improvement to the dilation objective
// Σ influence(u→v)·distance(hw(u),hw(v)), until no move helps or maxMoves
// moves have been applied. Resource requirements are respected. The input
// assignment is not modified; the refined copy is returned with the number
// of moves applied.
func Refine(asg Assignment, g *graph.Graph, p *hw.Platform, req Requirements, maxMoves int) (Assignment, int, error) {
	return RefineCtx(nil, asg, g, p, req, maxMoves)
}

// RefineCtx is Refine with cooperative cancellation: the local search polls
// ctx before every move evaluation round (each round is an O(clusters² +
// clusters·free) sweep of candidate moves) and returns ctx.Err() when it
// fires. A nil ctx disables the checks.
func RefineCtx(ctx context.Context, asg Assignment, g *graph.Graph, p *hw.Platform, req Requirements, maxMoves int) (Assignment, int, error) {
	if maxMoves <= 0 {
		maxMoves = 64
	}
	cur := make(Assignment, len(asg))
	for k, v := range asg {
		cur[k] = v
	}
	clusters := cur.Clusters()
	// Pairwise coupling between clusters: the summed weight of base-graph
	// edges between their member sets (the same accounting Evaluate's
	// CommCost uses), falling back to the cluster-level mutual influence
	// when g holds the cluster ids directly.
	clusterOf := map[string]string{}
	for _, c := range clusters {
		for _, m := range graph.Members(c) {
			clusterOf[m] = c
		}
	}
	coupling := map[[2]string]float64{}
	addCoupling := func(a, b string, w float64) {
		if b < a {
			a, b = b, a
		}
		coupling[[2]string{a, b}] += w
	}
	for _, e := range g.Edges() {
		if e.Replica {
			continue
		}
		ca, cb := clusterOf[e.From], clusterOf[e.To]
		if ca == "" || cb == "" || ca == cb {
			continue
		}
		addCoupling(ca, cb, e.Weight)
	}
	dist := func(a, b string) float64 {
		d, ok := p.Distance(a, b)
		if !ok {
			return float64(p.NumNodes())
		}
		return d
	}
	cost := func(a Assignment) float64 {
		total := 0.0
		for pair, m := range coupling {
			total += m * dist(a[pair[0]], a[pair[1]])
		}
		return total
	}
	fits := func(cluster, nodeName string) (bool, error) {
		node, err := p.Node(nodeName)
		if err != nil {
			return false, fmt.Errorf("mapping: refine: %w", err)
		}
		for _, res := range req.forCluster(cluster) {
			if !node.HasResource(res) {
				return false, nil
			}
		}
		return true, nil
	}

	used := map[string]bool{}
	for _, n := range cur {
		used[n] = true
	}
	var free []string
	for _, n := range p.Nodes() {
		if !used[n] {
			free = append(free, n)
		}
	}
	sort.Strings(free)

	moves := 0
	curCost := cost(cur)
	for moves < maxMoves {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, 0, fmt.Errorf("mapping: refine cancelled after %d moves: %w", moves, err)
			}
		}
		bestDelta := -1e-12 // strict improvement required
		var apply func()
		// Swap moves.
		for i, a := range clusters {
			for _, b := range clusters[i+1:] {
				na, nb := cur[a], cur[b]
				if na == nb {
					continue
				}
				okA, err := fits(a, nb)
				if err != nil {
					return nil, 0, err
				}
				okB, err := fits(b, na)
				if err != nil {
					return nil, 0, err
				}
				if !okA || !okB {
					continue
				}
				trial := cloneAssignment(cur)
				trial[a], trial[b] = nb, na
				delta := cost(trial) - curCost
				if delta < bestDelta {
					bestDelta = delta
					aa, bb := a, b
					apply = func() { cur[aa], cur[bb] = cur[bb], cur[aa] }
				}
			}
		}
		// Relocation moves to free nodes.
		for _, a := range clusters {
			for _, dest := range free {
				ok, err := fits(a, dest)
				if err != nil {
					return nil, 0, err
				}
				if !ok || cur[a] == dest {
					continue
				}
				trial := cloneAssignment(cur)
				trial[a] = dest
				delta := cost(trial) - curCost
				if delta < bestDelta {
					bestDelta = delta
					aa, dd, src := a, dest, cur[a]
					apply = func() {
						cur[aa] = dd
						free = replaceFree(free, dd, src)
					}
				}
			}
		}
		if apply == nil {
			break
		}
		apply()
		curCost = cost(cur)
		moves++
	}
	return cur, moves, nil
}

func cloneAssignment(a Assignment) Assignment {
	out := make(Assignment, len(a))
	for k, v := range a {
		out[k] = v
	}
	return out
}

// replaceFree swaps dest out of the free list and returns src into it.
func replaceFree(free []string, dest, src string) []string {
	out := free[:0]
	for _, n := range free {
		if n != dest {
			out = append(out, n)
		}
	}
	out = append(out, src)
	sort.Strings(out)
	return out
}

// Dilation computes the communication-cost objective of an assignment
// over the given graph: Σ influence(u→v) × distance(hw(u), hw(v)) for
// cross-node edges, measured at cluster granularity.
func Dilation(asg Assignment, g *graph.Graph, p *hw.Platform) float64 {
	total := 0.0
	for _, e := range g.Edges() {
		if e.Replica {
			continue
		}
		na, nb := asg[e.From], asg[e.To]
		if na == "" || nb == "" || na == nb {
			continue
		}
		d, ok := p.Distance(na, nb)
		if !ok {
			d = float64(p.NumNodes())
		}
		total += e.Weight * d
	}
	return total
}
