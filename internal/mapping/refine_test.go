package mapping

import (
	"testing"

	"repro/internal/attrs"
	"repro/internal/graph"
	"repro/internal/hw"
)

// lineGraph builds clusters a-b-c-d with strong a<->b and c<->d coupling
// and weak b<->c coupling.
func lineGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New()
	for _, n := range []string{"a", "b", "c", "d"} {
		if err := g.AddNode(n, attrs.Set{}); err != nil {
			t.Fatal(err)
		}
	}
	edges := []struct {
		from, to string
		w        float64
	}{
		{"a", "b", 0.9}, {"b", "a", 0.8},
		{"c", "d", 0.9}, {"d", "c", 0.8},
		{"b", "c", 0.1},
	}
	for _, e := range edges {
		if err := g.SetEdge(e.from, e.to, e.w); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestRefineImprovesBadPlacement(t *testing.T) {
	g := lineGraph(t)
	ring, err := hw.Ring(6)
	if err != nil {
		t.Fatal(err)
	}
	// Adversarial start: strongly coupled pairs placed maximally apart.
	bad := Assignment{"a": "hw1", "b": "hw4", "c": "hw2", "d": "hw5"}
	before := Dilation(bad, g, ring)
	refined, moves, err := Refine(bad, g, ring, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	after := Dilation(refined, g, ring)
	if moves == 0 {
		t.Fatal("no moves applied to an adversarial placement")
	}
	if after >= before {
		t.Errorf("dilation %g -> %g, want improvement", before, after)
	}
	// Strongly coupled pairs end adjacent.
	for _, pair := range [][2]string{{"a", "b"}, {"c", "d"}} {
		d, ok := ring.Distance(refined[pair[0]], refined[pair[1]])
		if !ok || d > 1 {
			t.Errorf("%v placed %g apart after refinement", pair, d)
		}
	}
	// Input untouched.
	if bad["a"] != "hw1" || bad["b"] != "hw4" {
		t.Error("Refine mutated its input")
	}
}

func TestRefineAlreadyOptimalNoMoves(t *testing.T) {
	g := lineGraph(t)
	ring, err := hw.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	good := Assignment{"a": "hw1", "b": "hw2", "c": "hw3", "d": "hw4"}
	refined, moves, err := Refine(good, g, ring, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if moves != 0 {
		t.Errorf("moves = %d on an optimal placement (refined: %v)", moves, refined)
	}
}

func TestRefineRespectsResources(t *testing.T) {
	g := graph.New()
	for _, n := range []string{"x", "y"} {
		if err := g.AddNode(n, attrs.Set{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.SetEdge("x", "y", 0.9); err != nil {
		t.Fatal(err)
	}
	p := hw.NewPlatform()
	for _, n := range []string{"n1", "n2", "n3"} {
		res := map[string]bool{}
		if n == "n3" {
			res["adc"] = true
		}
		if err := p.AddNode(hw.Node{Name: n, Resources: res}); err != nil {
			t.Fatal(err)
		}
	}
	// Line topology: n1 - n2 - n3.
	if err := p.Link("n1", "n2", 1); err != nil {
		t.Fatal(err)
	}
	if err := p.Link("n2", "n3", 1); err != nil {
		t.Fatal(err)
	}
	req := Requirements{"x": {"adc"}}
	// x is pinned to n3 by its requirement; y starts far away on n1.
	asg := Assignment{"x": "n3", "y": "n1"}
	refined, moves, err := Refine(asg, g, p, req, 0)
	if err != nil {
		t.Fatal(err)
	}
	if refined["x"] != "n3" {
		t.Errorf("x moved off its resource node to %s", refined["x"])
	}
	if refined["y"] != "n2" || moves == 0 {
		t.Errorf("y should relocate to n2: %v (moves %d)", refined, moves)
	}
}

func TestRefineMaxMovesBudget(t *testing.T) {
	g := lineGraph(t)
	ring, err := hw.Ring(8)
	if err != nil {
		t.Fatal(err)
	}
	bad := Assignment{"a": "hw1", "b": "hw5", "c": "hw3", "d": "hw7"}
	_, moves, err := Refine(bad, g, ring, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if moves > 1 {
		t.Errorf("moves = %d, budget was 1", moves)
	}
}

func TestDilationAccounting(t *testing.T) {
	g := lineGraph(t)
	p, err := hw.Complete(4)
	if err != nil {
		t.Fatal(err)
	}
	asg := Assignment{"a": "hw1", "b": "hw1", "c": "hw2", "d": "hw2"}
	// Cross edges: b->c only (0.1) at distance 1.
	if got := Dilation(asg, g, p); got != 0.1 {
		t.Errorf("dilation = %g, want 0.1", got)
	}
	// Unassigned clusters are skipped.
	partial := Assignment{"a": "hw1"}
	if got := Dilation(partial, g, p); got != 0 {
		t.Errorf("partial dilation = %g, want 0", got)
	}
}
