// Package metrics provides the reliability mathematics used to quantify
// the dependability of an integrated system: series/parallel/k-of-n
// combination (TMR = 2-of-3), module reliability from influence exposure,
// and a whole-system dependability report.
//
// These computations give the framework the "measures to quantify the
// goodness of dependable system integration" promised in the paper's
// abstract.
package metrics

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrProbRange marks a probability outside [0,1].
var ErrProbRange = errors.New("metrics: probability must be in [0,1]")

func checkProb(ps ...float64) error {
	for _, p := range ps {
		if p < 0 || p > 1 || math.IsNaN(p) {
			return fmt.Errorf("%w: %g", ErrProbRange, p)
		}
	}
	return nil
}

// Series returns the reliability of components in series: all must work.
func Series(rs ...float64) (float64, error) {
	if err := checkProb(rs...); err != nil {
		return 0, err
	}
	out := 1.0
	for _, r := range rs {
		out *= r
	}
	return out, nil
}

// Parallel returns the reliability of components in parallel: one
// suffices.
func Parallel(rs ...float64) (float64, error) {
	if err := checkProb(rs...); err != nil {
		return 0, err
	}
	q := 1.0
	for _, r := range rs {
		q *= 1 - r
	}
	return 1 - q, nil
}

// KOfN returns the probability that at least k of n components with equal
// reliability r work. TMR voting is KOfN(2, 3, r).
func KOfN(k, n int, r float64) (float64, error) {
	if err := checkProb(r); err != nil {
		return 0, err
	}
	if k < 0 || n < 0 || k > n {
		return 0, fmt.Errorf("metrics: invalid k-of-n: %d of %d", k, n)
	}
	sum := 0.0
	for i := k; i <= n; i++ {
		sum += binom(n, i) * math.Pow(r, float64(i)) * math.Pow(1-r, float64(n-i))
	}
	return sum, nil
}

func binom(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	out := 1.0
	for i := 0; i < k; i++ {
		out = out * float64(n-i) / float64(i+1)
	}
	return out
}

// TMR is the classic 2-of-3 majority reliability.
func TMR(r float64) (float64, error) { return KOfN(2, 3, r) }

// Availability converts MTTF/MTTR to steady-state availability.
func Availability(mttf, mttr float64) (float64, error) {
	if mttf < 0 || mttr < 0 || mttf+mttr == 0 {
		return 0, fmt.Errorf("metrics: invalid MTTF %g / MTTR %g", mttf, mttr)
	}
	return mttf / (mttf + mttr), nil
}

// ModuleReliability estimates the probability a module stays fault-free
// given its intrinsic fault probability and the influences it is exposed
// to: R = (1 − pOwn) · ∏(1 − influence_i · pSrc_i), where each incoming
// influence transmits its source's fault with the edge probability.
func ModuleReliability(pOwn float64, incoming []ExposedInfluence) (float64, error) {
	if err := checkProb(pOwn); err != nil {
		return 0, err
	}
	out := 1 - pOwn
	for _, e := range incoming {
		if err := checkProb(e.Influence, e.SourceFaultProb); err != nil {
			return 0, err
		}
		out *= 1 - e.Influence*e.SourceFaultProb
	}
	return out, nil
}

// ExposedInfluence is one incoming influence edge with the source module's
// own fault probability.
type ExposedInfluence struct {
	Source          string
	Influence       float64
	SourceFaultProb float64
}

// SystemReport summarises dependability of an integrated system.
type SystemReport struct {
	// ModuleReliability per module (after replication).
	ModuleReliability map[string]float64
	// SystemReliability is the series combination over modules (all
	// modules needed).
	SystemReliability float64
	// WeakestModule has the lowest reliability.
	WeakestModule string
}

// ModuleSpec describes one module for the system report.
type ModuleSpec struct {
	Name string
	// FaultProb is the module's intrinsic per-mission fault probability.
	FaultProb float64
	// Replicas is the replication degree; Majority selects TMR-style
	// voting (majority needed) vs standby (one replica suffices).
	Replicas int
	Majority bool
}

// SystemReliability computes the report for a set of modules, treating the
// system as a series composition of (possibly replicated) modules.
func SystemReliability(mods []ModuleSpec) (SystemReport, error) {
	rep := SystemReport{ModuleReliability: map[string]float64{}, SystemReliability: 1}
	names := make([]string, 0, len(mods))
	for _, m := range mods {
		if err := checkProb(m.FaultProb); err != nil {
			return rep, fmt.Errorf("metrics: module %s: %w", m.Name, err)
		}
		n := m.Replicas
		if n < 1 {
			n = 1
		}
		r := 1 - m.FaultProb
		var mr float64
		var err error
		if m.Majority {
			mr, err = KOfN(n/2+1, n, r)
		} else {
			mr, err = KOfN(1, n, r)
		}
		if err != nil {
			return rep, err
		}
		rep.ModuleReliability[m.Name] = mr
		rep.SystemReliability *= mr
		names = append(names, m.Name)
	}
	sort.Strings(names)
	worst := math.Inf(1)
	for _, n := range names {
		if r := rep.ModuleReliability[n]; r < worst {
			worst = r
			rep.WeakestModule = n
		}
	}
	return rep, nil
}
