package metrics

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestSeries(t *testing.T) {
	got, err := Series(0.9, 0.9)
	if err != nil || !almost(got, 0.81) {
		t.Errorf("Series = %g, %v", got, err)
	}
	got, err = Series()
	if err != nil || got != 1 {
		t.Errorf("empty Series = %g, %v", got, err)
	}
	if _, err := Series(1.5); !errors.Is(err, ErrProbRange) {
		t.Errorf("err = %v", err)
	}
}

func TestParallel(t *testing.T) {
	got, err := Parallel(0.9, 0.9)
	if err != nil || !almost(got, 0.99) {
		t.Errorf("Parallel = %g, %v", got, err)
	}
	if _, err := Parallel(-0.1); !errors.Is(err, ErrProbRange) {
		t.Errorf("err = %v", err)
	}
}

func TestKOfN(t *testing.T) {
	// TMR with r = 0.9: 3(0.9)²(0.1) + (0.9)³ = 0.972.
	got, err := KOfN(2, 3, 0.9)
	if err != nil || !almost(got, 0.972) {
		t.Errorf("KOfN(2,3,0.9) = %g, %v", got, err)
	}
	// 1-of-n equals Parallel with equal r.
	k1, err := KOfN(1, 2, 0.9)
	if err != nil || !almost(k1, 0.99) {
		t.Errorf("KOfN(1,2,0.9) = %g, %v", k1, err)
	}
	// n-of-n equals Series.
	kn, err := KOfN(3, 3, 0.9)
	if err != nil || !almost(kn, 0.729) {
		t.Errorf("KOfN(3,3,0.9) = %g, %v", kn, err)
	}
	// 0-of-n is certain.
	k0, err := KOfN(0, 3, 0.5)
	if err != nil || !almost(k0, 1) {
		t.Errorf("KOfN(0,3,0.5) = %g, %v", k0, err)
	}
	if _, err := KOfN(4, 3, 0.5); err == nil {
		t.Error("k > n accepted")
	}
	if _, err := KOfN(2, 3, 1.5); !errors.Is(err, ErrProbRange) {
		t.Errorf("err = %v", err)
	}
}

func TestTMRCrossover(t *testing.T) {
	// Classic result: TMR beats simplex only when r > 0.5.
	hi, err := TMR(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if hi <= 0.9 {
		t.Errorf("TMR(0.9) = %g, should exceed 0.9", hi)
	}
	lo, err := TMR(0.4)
	if err != nil {
		t.Fatal(err)
	}
	if lo >= 0.4 {
		t.Errorf("TMR(0.4) = %g, should be below 0.4", lo)
	}
	mid, err := TMR(0.5)
	if err != nil || !almost(mid, 0.5) {
		t.Errorf("TMR(0.5) = %g, want exactly 0.5", mid)
	}
}

func TestTMRMonotoneProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		ra, rb := float64(a)/255, float64(b)/255
		ta, err1 := TMR(ra)
		tb, err2 := TMR(rb)
		if err1 != nil || err2 != nil {
			return false
		}
		if ra <= rb {
			return ta <= tb+1e-12
		}
		return ta+1e-12 >= tb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAvailability(t *testing.T) {
	got, err := Availability(99, 1)
	if err != nil || !almost(got, 0.99) {
		t.Errorf("Availability = %g, %v", got, err)
	}
	if _, err := Availability(0, 0); err == nil {
		t.Error("0/0 availability accepted")
	}
	if _, err := Availability(-1, 1); err == nil {
		t.Error("negative MTTF accepted")
	}
}

func TestModuleReliability(t *testing.T) {
	// No exposure: R = 1 - pOwn.
	got, err := ModuleReliability(0.1, nil)
	if err != nil || !almost(got, 0.9) {
		t.Errorf("ModuleReliability = %g, %v", got, err)
	}
	// One influence of 0.5 from a source with fault prob 0.2:
	// R = 0.9 * (1 - 0.1) = 0.81.
	got, err = ModuleReliability(0.1, []ExposedInfluence{
		{Source: "x", Influence: 0.5, SourceFaultProb: 0.2},
	})
	if err != nil || !almost(got, 0.81) {
		t.Errorf("ModuleReliability = %g, %v", got, err)
	}
	if _, err := ModuleReliability(2, nil); !errors.Is(err, ErrProbRange) {
		t.Errorf("err = %v", err)
	}
	if _, err := ModuleReliability(0.1, []ExposedInfluence{{Influence: 3}}); !errors.Is(err, ErrProbRange) {
		t.Errorf("err = %v", err)
	}
}

func TestModuleReliabilityMoreInfluenceIsWorse(t *testing.T) {
	f := func(a, b uint8) bool {
		ia, ib := float64(a)/255, float64(b)/255
		ra, err1 := ModuleReliability(0.05, []ExposedInfluence{{Influence: ia, SourceFaultProb: 0.3}})
		rb, err2 := ModuleReliability(0.05, []ExposedInfluence{{Influence: ib, SourceFaultProb: 0.3}})
		if err1 != nil || err2 != nil {
			return false
		}
		if ia <= ib {
			return ra+1e-12 >= rb
		}
		return ra <= rb+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSystemReliability(t *testing.T) {
	rep, err := SystemReliability([]ModuleSpec{
		{Name: "p1", FaultProb: 0.1, Replicas: 3, Majority: true}, // TMR: 0.972
		{Name: "p4", FaultProb: 0.1, Replicas: 1},                 // simplex: 0.9
	})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(rep.ModuleReliability["p1"], 0.972) {
		t.Errorf("p1 reliability = %g", rep.ModuleReliability["p1"])
	}
	if !almost(rep.ModuleReliability["p4"], 0.9) {
		t.Errorf("p4 reliability = %g", rep.ModuleReliability["p4"])
	}
	if !almost(rep.SystemReliability, 0.972*0.9) {
		t.Errorf("system reliability = %g", rep.SystemReliability)
	}
	if rep.WeakestModule != "p4" {
		t.Errorf("weakest = %s, want p4", rep.WeakestModule)
	}
}

func TestSystemReliabilityStandby(t *testing.T) {
	rep, err := SystemReliability([]ModuleSpec{
		{Name: "d", FaultProb: 0.1, Replicas: 2}, // 1-of-2: 0.99
	})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(rep.ModuleReliability["d"], 0.99) {
		t.Errorf("duplex standby = %g, want 0.99", rep.ModuleReliability["d"])
	}
}

func TestSystemReliabilityValidation(t *testing.T) {
	if _, err := SystemReliability([]ModuleSpec{{Name: "x", FaultProb: 2}}); err == nil {
		t.Error("bad fault probability accepted")
	}
	// Zero replicas treated as simplex.
	rep, err := SystemReliability([]ModuleSpec{{Name: "x", FaultProb: 0.5}})
	if err != nil || !almost(rep.SystemReliability, 0.5) {
		t.Errorf("zero-replica module: %g, %v", rep.SystemReliability, err)
	}
}

func TestReplicationImprovesSystem(t *testing.T) {
	// E7 shape: replicating the weakest module lifts system reliability.
	base, err := SystemReliability([]ModuleSpec{{Name: "m", FaultProb: 0.2, Replicas: 1}})
	if err != nil {
		t.Fatal(err)
	}
	tmr, err := SystemReliability([]ModuleSpec{{Name: "m", FaultProb: 0.2, Replicas: 3, Majority: true}})
	if err != nil {
		t.Fatal(err)
	}
	standby, err := SystemReliability([]ModuleSpec{{Name: "m", FaultProb: 0.2, Replicas: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if !(base.SystemReliability < tmr.SystemReliability) {
		t.Errorf("TMR %g not above simplex %g", tmr.SystemReliability, base.SystemReliability)
	}
	if !(tmr.SystemReliability < standby.SystemReliability) {
		t.Errorf("1-of-2 standby %g should top TMR %g at r=0.8",
			standby.SystemReliability, tmr.SystemReliability)
	}
}
