package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// BusEvent is one record of the streaming telemetry fabric. Seq is a
// strictly increasing, gapless publication number (the first event of a
// bus is 1); TMS is milliseconds since the bus epoch. Kind classifies the
// source ("span_start", "span_end", "event" for mirrored span events, and
// the direct progress kinds "campaign_start", "campaign_checkpoint",
// "campaign_done", "search_eval", "search_done", "certify_member",
// "certify_level"); Name is the span, campaign label or event name; Span
// names the owning span for mirrored events. The committed JSON Schema
// for the serialised form lives at docs/streaming/events.schema.json.
type BusEvent struct {
	Seq   uint64         `json:"seq"`
	TMS   float64        `json:"t_ms"`
	Kind  string         `json:"kind"`
	Name  string         `json:"name"`
	Span  string         `json:"span,omitempty"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// Bus is a bounded, non-blocking broadcast bus for telemetry events: the
// live counterpart of the post-mortem span tree. Publishers never block
// and never wait on consumers — each subscriber owns a fixed-capacity
// ring that drops its oldest event (counting the drop) when the consumer
// falls behind, so a stalled HTTP client can never stall a campaign. A
// bounded replay ring keeps the most recent events so late subscribers
// can resume from any sequence number still retained.
//
// A nil *Bus absorbs every call: the uninstrumented publish path is a
// single pointer comparison, mirroring the nil Observer contract.
type Bus struct {
	epoch time.Time
	now   func() time.Time

	mu         sync.Mutex
	seq        uint64
	replay     []BusEvent // ring storage, len == cap once full
	replayHead int        // index of the oldest retained event
	subs       map[*Subscriber]struct{}
	sinks      []func(BusEvent)
	closed     bool

	dropped atomic.Uint64 // events dropped across all subscribers
}

// DefaultBusReplay is the replay-ring capacity NewBus(0) uses.
const DefaultBusReplay = 1024

// NewBus builds a bus retaining up to replayCap recent events for
// late-subscriber replay (0 means DefaultBusReplay).
func NewBus(replayCap int) *Bus {
	if replayCap <= 0 {
		replayCap = DefaultBusReplay
	}
	return &Bus{
		epoch:  time.Now(),
		now:    time.Now,
		replay: make([]BusEvent, 0, replayCap),
		subs:   map[*Subscriber]struct{}{},
	}
}

// Attach registers a synchronous sink invoked inline for every published
// event (the progress Tracker uses this). Sinks must be fast and must not
// publish back into the bus. Attach before any concurrent publishing.
func (b *Bus) Attach(sink func(BusEvent)) {
	if b == nil || sink == nil {
		return
	}
	b.mu.Lock()
	b.sinks = append(b.sinks, sink)
	b.mu.Unlock()
}

// Publish broadcasts one event. Safe on a nil bus (a single pointer
// check, no work); never blocks on slow subscribers.
func (b *Bus) Publish(kind, name string, attrs ...Attr) {
	if b == nil {
		return
	}
	b.publish(kind, "", name, attrs)
}

// publish is the shared emission path (span mirroring supplies span).
func (b *Bus) publish(kind, span, name string, attrs []Attr) {
	ev := BusEvent{
		TMS:   float64(b.now().Sub(b.epoch)) / float64(time.Millisecond),
		Kind:  kind,
		Name:  name,
		Span:  span,
		Attrs: attrsMap(attrs),
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.seq++
	ev.Seq = b.seq
	// Replay ring: overwrite the oldest slot once at capacity.
	if len(b.replay) < cap(b.replay) {
		b.replay = append(b.replay, ev)
	} else {
		b.replay[b.replayHead] = ev
		b.replayHead = (b.replayHead + 1) % cap(b.replay)
	}
	for s := range b.subs {
		if s.push(ev) {
			b.dropped.Add(1)
		}
	}
	sinks := b.sinks
	b.mu.Unlock()
	for _, sink := range sinks {
		sink(ev)
	}
}

// Seq returns the sequence number of the most recently published event
// (0 when nothing was published, or on a nil bus).
func (b *Bus) Seq() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seq
}

// Subscribers reports how many subscribers are currently registered —
// an observability hook for tests asserting that disconnected consumers
// (an /events client that went away mid-replay, a closed watcher) were
// actually unregistered rather than leaked.
func (b *Bus) Subscribers() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// Dropped returns the total number of events dropped across all
// subscribers (ring overflows plus replay gaps at subscribe time).
func (b *Bus) Dropped() uint64 {
	if b == nil {
		return 0
	}
	return b.dropped.Load()
}

// oldestRetained returns the lowest sequence number still in the replay
// ring (0 when the ring is empty). Caller holds b.mu.
func (b *Bus) oldestRetained() uint64 {
	if len(b.replay) == 0 {
		return 0
	}
	return b.replay[b.replayHead%len(b.replay)].Seq
}

// Subscribe registers a consumer. Events with Seq >= from still held in
// the replay ring are pre-loaded into the subscriber's buffer; events
// already evicted (or beyond the buffer capacity) count as drops, so a
// consumer can always detect the gap. from == 0 means "everything still
// available"; from == Seq()+1 means "live events only". bufCap is the
// subscriber's ring capacity (0 means 256).
func (b *Bus) Subscribe(from uint64, bufCap int) *Subscriber {
	if b == nil {
		return nil
	}
	if bufCap <= 0 {
		bufCap = 256
	}
	s := &Subscriber{
		bus:    b,
		buf:    make([]BusEvent, bufCap),
		notify: make(chan struct{}, 1),
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		s.closed = true
		return s
	}
	if oldest := b.oldestRetained(); oldest > 0 {
		if from < oldest {
			if from > 0 {
				// The caller asked for events the ring no longer holds.
				gap := oldest - from
				s.dropped += gap
				b.dropped.Add(gap)
			}
			from = oldest
		}
		n := len(b.replay)
		for i := 0; i < n; i++ {
			ev := b.replay[(b.replayHead+i)%n]
			if ev.Seq >= from {
				if s.pushLocked(ev) {
					b.dropped.Add(1)
				}
			}
		}
	}
	b.subs[s] = struct{}{}
	return s
}

// Close shuts the bus down: every subscriber is closed (consumers drain
// their buffered events, then see ok == false) and later publishes are
// discarded.
func (b *Bus) Close() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.closed = true
	subs := make([]*Subscriber, 0, len(b.subs))
	for s := range b.subs {
		subs = append(subs, s)
	}
	b.subs = map[*Subscriber]struct{}{}
	b.mu.Unlock()
	for _, s := range subs {
		s.close()
	}
}

// Subscriber is one consumer's bounded view of the bus. All methods are
// safe on a nil receiver.
type Subscriber struct {
	bus *Bus

	mu      sync.Mutex
	buf     []BusEvent // fixed-capacity ring
	head, n int
	dropped uint64
	closed  bool
	notify  chan struct{}
}

// push appends ev, evicting the oldest buffered event when full.
// Reports whether an event was dropped.
func (s *Subscriber) push(ev BusEvent) (droppedOne bool) {
	s.mu.Lock()
	droppedOne = s.pushLocked(ev)
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
	return droppedOne
}

func (s *Subscriber) pushLocked(ev BusEvent) (droppedOne bool) {
	if s.closed {
		return false
	}
	if s.n == len(s.buf) {
		s.head = (s.head + 1) % len(s.buf)
		s.n--
		s.dropped++
		droppedOne = true
	}
	s.buf[(s.head+s.n)%len(s.buf)] = ev
	s.n++
	return droppedOne
}

// Next returns the next buffered event, blocking until one arrives, the
// subscription closes (ok == false), or ctx is done (ok == false). A nil
// ctx blocks until an event or close.
func (s *Subscriber) Next(ctx context.Context) (ev BusEvent, ok bool) {
	if s == nil {
		return BusEvent{}, false
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	for {
		s.mu.Lock()
		if s.n > 0 {
			ev = s.buf[s.head]
			s.buf[s.head] = BusEvent{}
			s.head = (s.head + 1) % len(s.buf)
			s.n--
			s.mu.Unlock()
			return ev, true
		}
		if s.closed {
			s.mu.Unlock()
			return BusEvent{}, false
		}
		s.mu.Unlock()
		select {
		case <-done:
			return BusEvent{}, false
		case <-s.notify:
		}
	}
}

// TryNext returns the next buffered event without blocking.
func (s *Subscriber) TryNext() (ev BusEvent, ok bool) {
	if s == nil {
		return BusEvent{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return BusEvent{}, false
	}
	ev = s.buf[s.head]
	s.buf[s.head] = BusEvent{}
	s.head = (s.head + 1) % len(s.buf)
	s.n--
	return ev, true
}

// Dropped returns how many events this subscriber has missed: ring
// overflows while it lagged plus any replay gap at subscribe time.
func (s *Subscriber) Dropped() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Close detaches the subscriber from the bus; a blocked Next returns
// after the remaining buffered events are drained.
func (s *Subscriber) Close() {
	if s == nil {
		return
	}
	if s.bus != nil {
		s.bus.mu.Lock()
		delete(s.bus.subs, s)
		s.bus.mu.Unlock()
	}
	s.close()
}

func (s *Subscriber) close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}
