package obs

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/testutil"
)

func drain(s *Subscriber) []BusEvent {
	var out []BusEvent
	for {
		ev, ok := s.TryNext()
		if !ok {
			return out
		}
		out = append(out, ev)
	}
}

func TestBusPublishSubscribe(t *testing.T) {
	b := NewBus(16)
	sub := b.Subscribe(0, 16)
	b.Publish("event", "first", Int("n", 1))
	b.Publish("event", "second")
	evs := drain(sub)
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].Seq != 1 || evs[1].Seq != 2 {
		t.Errorf("seqs = %d,%d, want 1,2", evs[0].Seq, evs[1].Seq)
	}
	if evs[0].Name != "first" || evs[0].Attrs["n"] != 1 {
		t.Errorf("first event = %+v", evs[0])
	}
	if b.Seq() != 2 {
		t.Errorf("Seq() = %d, want 2", b.Seq())
	}
}

func TestBusReplayFromSequence(t *testing.T) {
	b := NewBus(8)
	for i := 0; i < 5; i++ {
		b.Publish("event", "e")
	}
	// Replay from the middle: must receive exactly 3,4,5.
	sub := b.Subscribe(3, 16)
	evs := drain(sub)
	if len(evs) != 3 || evs[0].Seq != 3 || evs[2].Seq != 5 {
		t.Fatalf("replay from 3 got %+v, want seqs 3..5", evs)
	}
	if sub.Dropped() != 0 {
		t.Errorf("mid-ring replay recorded %d drops, want 0", sub.Dropped())
	}
	// Live events continue after the replayed ones.
	b.Publish("event", "live")
	if ev, ok := sub.TryNext(); !ok || ev.Seq != 6 {
		t.Fatalf("live event after replay = %+v ok=%v, want seq 6", ev, ok)
	}
}

func TestBusReplayEvictionCountsDrops(t *testing.T) {
	b := NewBus(4)
	for i := 0; i < 10; i++ {
		b.Publish("event", "e")
	}
	// Ring holds seqs 7..10; asking for everything from 1 misses 1..6.
	sub := b.Subscribe(1, 16)
	if got := sub.Dropped(); got != 6 {
		t.Errorf("Dropped() = %d, want 6", got)
	}
	evs := drain(sub)
	if len(evs) != 4 || evs[0].Seq != 7 {
		t.Fatalf("replay got %+v, want seqs 7..10", evs)
	}
	// from == 0 means "whatever is available" and is not a gap.
	sub0 := b.Subscribe(0, 16)
	if got := sub0.Dropped(); got != 0 {
		t.Errorf("from=0 Dropped() = %d, want 0", got)
	}
}

func TestSubscriberOverflowDropsOldest(t *testing.T) {
	b := NewBus(64)
	sub := b.Subscribe(0, 3)
	for i := 0; i < 8; i++ {
		b.Publish("event", "e")
	}
	if got := sub.Dropped(); got != 5 {
		t.Errorf("Dropped() = %d, want 5", got)
	}
	if got := b.Dropped(); got != 5 {
		t.Errorf("bus Dropped() = %d, want 5", got)
	}
	evs := drain(sub)
	if len(evs) != 3 || evs[0].Seq != 6 || evs[2].Seq != 8 {
		t.Fatalf("buffered events = %+v, want seqs 6..8", evs)
	}
}

func TestSubscriberNextBlocksAndWakes(t *testing.T) {
	testutil.CheckGoroutines(t)
	b := NewBus(16)
	sub := b.Subscribe(0, 16)
	got := make(chan BusEvent, 1)
	go func() {
		ev, ok := sub.Next(context.Background())
		if ok {
			got <- ev
		}
		close(got)
	}()
	time.Sleep(10 * time.Millisecond)
	b.Publish("event", "wake")
	select {
	case ev := <-got:
		if ev.Name != "wake" {
			t.Errorf("woke with %+v", ev)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Next did not wake on publish")
	}
}

func TestSubscriberNextContextCancel(t *testing.T) {
	testutil.CheckGoroutines(t)
	b := NewBus(16)
	sub := b.Subscribe(0, 16)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan bool, 1)
	go func() {
		_, ok := sub.Next(ctx)
		done <- ok
	}()
	cancel()
	select {
	case ok := <-done:
		if ok {
			t.Error("Next returned ok=true on cancelled context")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Next did not return on context cancel")
	}
}

func TestBusCloseDrainsSubscribers(t *testing.T) {
	testutil.CheckGoroutines(t)
	b := NewBus(16)
	sub := b.Subscribe(0, 16)
	b.Publish("event", "before")
	b.Close()
	// Buffered events drain first, then the stream ends.
	if ev, ok := sub.Next(nil); !ok || ev.Name != "before" {
		t.Fatalf("drain after close = %+v ok=%v", ev, ok)
	}
	if _, ok := sub.Next(nil); ok {
		t.Error("Next returned ok=true after close and drain")
	}
	// Publishing after close is a silent no-op.
	b.Publish("event", "after")
	if b.Seq() != 1 {
		t.Errorf("Seq() after post-close publish = %d, want 1", b.Seq())
	}
}

func TestBusConcurrentPublish(t *testing.T) {
	testutil.CheckGoroutines(t)
	b := NewBus(1024)
	sub := b.Subscribe(0, 2048)
	var wg sync.WaitGroup
	const goroutines, per = 8, 100
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				b.Publish("event", "concurrent")
			}
		}()
	}
	wg.Wait()
	if b.Seq() != goroutines*per {
		t.Errorf("Seq() = %d, want %d", b.Seq(), goroutines*per)
	}
	evs := drain(sub)
	if len(evs) != goroutines*per {
		t.Fatalf("subscriber got %d events, want %d", len(evs), goroutines*per)
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d, want %d", i, ev.Seq, i+1)
		}
	}
}

func TestNilBusIsSafe(t *testing.T) {
	var b *Bus
	b.Publish("event", "x", Int("n", 1))
	b.Attach(func(BusEvent) {})
	b.Close()
	if b.Seq() != 0 || b.Dropped() != 0 {
		t.Error("nil bus reported nonzero state")
	}
	if sub := b.Subscribe(0, 4); sub != nil {
		t.Error("nil bus returned a subscriber")
	}
	var s *Subscriber
	if _, ok := s.Next(nil); ok {
		t.Error("nil subscriber returned an event")
	}
	s.Close()
}

// TestNilBusPublishZeroAlloc pins the uninstrumented fast path: publishing
// to a nil bus with no attributes allocates nothing. (Call sites that
// build attributes guard with `if bus != nil`, exactly like the nil-span
// convention, so the hot path never constructs the attr slice either.)
func TestNilBusPublishZeroAlloc(t *testing.T) {
	var b *Bus
	allocs := testing.AllocsPerRun(1000, func() {
		b.Publish("campaign_checkpoint", "label")
	})
	if allocs != 0 {
		t.Errorf("nil-bus publish allocates %.1f per op, want 0", allocs)
	}
}

// BenchmarkBusPublish compares the nil-bus fast path (must be 0 allocs/op
// — asserted by make stream-check via -benchmem in make bench-json)
// against a live single-subscriber publish.
func BenchmarkBusPublish(b *testing.B) {
	b.Run("nil", func(b *testing.B) {
		var bus *Bus
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bus.Publish("campaign_checkpoint", "label")
		}
	})
	b.Run("live", func(b *testing.B) {
		bus := NewBus(256)
		sub := bus.Subscribe(0, 256)
		defer sub.Close()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bus.Publish("campaign_checkpoint", "label", Int("trials_done", i))
			if i%128 == 0 {
				drain(sub)
			}
		}
	})
}
