package obs

import "net/http"

// dashboardHandler serves the live dashboard: one self-contained HTML
// document (inline CSS and JS, no external assets) that polls /progress
// and /metrics.json and tails /events over SSE.
func dashboardHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_, _ = w.Write([]byte(DashboardHTML))
	})
}

// DashboardHTML is the complete /dashboard document. It is exported so
// tooling (cmd/streamcheck) can assert the no-external-assets invariant
// against exactly what the server ships.
const DashboardHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>depint live dashboard</title>
<style>
body { font-family: system-ui, sans-serif; margin: 2rem auto; max-width: 60rem; color: #1a1a1a; }
h1 { font-size: 1.4rem; }
h2 { margin-top: 2rem; color: #333; font-size: 1.1rem; }
table { border-collapse: collapse; width: 100%; }
th, td { border: 1px solid #ddd; padding: .3rem .5rem; text-align: left; font-size: .85rem; }
th { background: #f0f0f0; }
code { background: #f5f5f5; padding: 0 .2rem; }
.muted { color: #777; font-size: .8rem; }
.chip { display: inline-block; padding: .05rem .45rem; border-radius: .6rem; font-size: .75rem; }
.chip.pending { background: #eee; color: #666; }
.chip.running { background: #fff3cd; color: #7a5b00; }
.chip.done { background: #d4edda; color: #1c5c2e; }
.chip.straggler { background: #f8d7da; color: #842029; }
.bar { background: #eee; border-radius: .25rem; height: .9rem; overflow: hidden; }
.bar > div { background: #4a7fb5; height: 100%; transition: width .4s; }
.grid { display: grid; grid-template-columns: repeat(auto-fill, minmax(16rem, 1fr)); gap: .8rem; }
.card { border: 1px solid #ddd; border-radius: .4rem; padding: .6rem .8rem; }
.card h3 { margin: 0 0 .3rem; font-size: .9rem; }
canvas { width: 100%; height: 40px; }
#eventlog { font-family: ui-monospace, monospace; font-size: .75rem; background: #f8f8f8;
  border: 1px solid #ddd; padding: .5rem; height: 12rem; overflow-y: auto; white-space: pre; }
#status { float: right; }
</style>
</head>
<body>
<h1>depint live dashboard <span id="status" class="chip pending">connecting</span></h1>
<p class="muted">Streaming from <code>/events</code>, polling <code>/progress</code> and
<code>/metrics.json</code>. Self-contained: no external assets.</p>

<h2>Pipeline stages <span id="run" class="muted"></span></h2>
<table><thead><tr><th>stage</th><th>state</th><th>attempts</th><th>duration</th></tr></thead>
<tbody id="stages"><tr><td colspan="4" class="muted">no run yet</td></tr></tbody></table>

<h2>Campaigns</h2>
<div id="campaigns" class="grid"><span class="muted">no campaigns yet</span></div>

<h2 id="fabrichdr" style="display:none">Distributed fabric <span id="fabricsum" class="muted"></span></h2>
<table id="fabrictbl" style="display:none"><thead>
<tr><th>worker</th><th>state</th><th>leases</th><th>chunks done</th>
<th>p50</th><th>p95</th><th>clock offset</th></tr></thead>
<tbody id="fabric"></tbody></table>

<h2>Metrics</h2>
<div id="metrics" class="grid"><span class="muted">no metrics yet</span></div>

<h2>Latency quantiles</h2>
<table><thead><tr><th>histogram</th><th>count</th><th>p50</th><th>p95</th><th>p99</th></tr></thead>
<tbody id="quantiles"><tr><td colspan="5" class="muted">no histograms yet</td></tr></tbody></table>

<h2>Event tail</h2>
<div id="eventlog"></div>

<script>
"use strict";
var history = {};            // metric name -> [values] for sparklines
var HISTORY_CAP = 120;
var logLines = [];
var LOG_CAP = 100;

function fmt(v, d) { return (typeof v === "number") ? v.toFixed(d === undefined ? 3 : d) : "-"; }
function fmtDur(ms) {
  if (ms === undefined || ms === null) return "-";
  if (ms < 1000) return ms.toFixed(1) + " ms";
  return (ms / 1000).toFixed(2) + " s";
}
function fmtOffset(us, rtt) {
  if (us === undefined || us === null) return "-";
  var s = (us >= 0 ? "+" : "") + (Math.abs(us) < 1000 ? us.toFixed(0) + " µs"
    : (us / 1000).toFixed(1) + " ms");
  if (rtt) s += " (rtt " + (rtt / 1000).toFixed(1) + " ms)";
  return s;
}
function el(tag, cls, text) {
  var e = document.createElement(tag);
  if (cls) e.className = cls;
  if (text !== undefined) e.textContent = text;
  return e;
}
function spark(canvas, values, color) {
  var ctx = canvas.getContext("2d");
  var w = canvas.width = canvas.clientWidth || 240, h = canvas.height = 40;
  ctx.clearRect(0, 0, w, h);
  if (!values || values.length < 2) return;
  var min = Math.min.apply(null, values), max = Math.max.apply(null, values);
  var span = (max - min) || 1;
  ctx.beginPath();
  for (var i = 0; i < values.length; i++) {
    var x = i / (values.length - 1) * (w - 2) + 1;
    var y = h - 3 - (values[i] - min) / span * (h - 6);
    if (i === 0) ctx.moveTo(x, y); else ctx.lineTo(x, y);
  }
  ctx.strokeStyle = color || "#4a7fb5";
  ctx.lineWidth = 1.5;
  ctx.stroke();
}

function renderStages(p) {
  var tb = document.getElementById("stages");
  tb.textContent = "";
  document.getElementById("run").textContent = p.run ? "(" + p.run + ")" : "";
  if (!p.stages || !p.stages.length) {
    tb.appendChild(el("tr")).appendChild(el("td", "muted", "no run yet")).colSpan = 4;
    return;
  }
  p.stages.forEach(function (s) {
    var tr = el("tr");
    tr.appendChild(el("td", null, s.name));
    tr.appendChild(el("td")).appendChild(el("span", "chip " + s.state, s.state));
    tr.appendChild(el("td", null, String(s.attempts || 0)));
    tr.appendChild(el("td", null, s.state === "done" ? fmtDur(s.duration_ms) : "-"));
    tb.appendChild(tr);
  });
}

function renderCampaigns(p) {
  var root = document.getElementById("campaigns");
  root.textContent = "";
  if (!p.campaigns || !p.campaigns.length) {
    root.appendChild(el("span", "muted", "no campaigns yet"));
    return;
  }
  p.campaigns.forEach(function (c) {
    var card = el("div", "card");
    var frac = c.trials_total ? c.trials_done / c.trials_total : 0;
    var title = c.label + (c.model ? " · " + c.model : "");
    card.appendChild(el("h3", null, title));
    var bar = card.appendChild(el("div", "bar"));
    var fill = bar.appendChild(el("div"));
    fill.style.width = (frac * 100).toFixed(1) + "%";
    var line = c.trials_done.toLocaleString() + " / " + c.trials_total.toLocaleString() + " trials";
    if (c.trials_per_sec) line += " · " + Math.round(c.trials_per_sec).toLocaleString() + "/s";
    if (c.eta_seconds) line += " · ETA " + c.eta_seconds.toFixed(1) + "s";
    if (c.done) line += c.early_stopped ? " · done (early stop)" : " · done";
    card.appendChild(el("div", "muted", line));
    card.appendChild(el("div", "muted",
      "escape " + fmt(c.escape_rate, 4) + (c.half_width ? " ± " + fmt(c.half_width, 4) : "")));
    if (c.trail_half_width && c.trail_half_width.length > 1) {
      card.appendChild(el("div", "muted", "CI half-width convergence"));
      spark(card.appendChild(el("canvas")), c.trail_half_width, "#b5574a");
    }
    root.appendChild(card);
  });
}

function renderFabric(p) {
  var hdr = document.getElementById("fabrichdr");
  var tbl = document.getElementById("fabrictbl");
  if (!p.fabric) { hdr.style.display = "none"; tbl.style.display = "none"; return; }
  hdr.style.display = ""; tbl.style.display = "";
  var f = p.fabric;
  var sum = (f.label ? "(" + f.label + ") " : "") + f.leases_granted + " leases granted";
  if (f.leases_expired) sum += " · " + f.leases_expired + " expired";
  if (f.reassigned) sum += " · " + f.reassigned + " reassigned";
  if (f.duplicates) sum += " · " + f.duplicates + " duplicates suppressed";
  if (f.quarantined) sum += " · " + f.quarantined + " quarantined";
  if (f.local_chunks) sum += " · " + f.local_chunks + " chunks computed locally";
  if (f.done) sum += " · done";
  document.getElementById("fabricsum").textContent = sum;
  var tb = document.getElementById("fabric");
  tb.textContent = "";
  (f.workers || []).forEach(function (w) {
    var tr = el("tr");
    var name = tr.appendChild(el("td", null, w.name));
    if (w.straggler) {
      name.appendChild(document.createTextNode(" "));
      name.appendChild(el("span", "chip straggler", "straggler"));
    }
    var cls = w.state === "lost" || w.state === "quarantined" ? "pending"
      : (w.state === "done" ? "done" : "running");
    tr.appendChild(el("td")).appendChild(el("span", "chip " + cls, w.state));
    tr.appendChild(el("td", null, String(w.leases || 0)));
    tr.appendChild(el("td", null, String(w.chunks_done || 0)));
    tr.appendChild(el("td", null, w.latency_p50_ms ? fmtDur(w.latency_p50_ms) : "-"));
    tr.appendChild(el("td", null, w.latency_p95_ms ? fmtDur(w.latency_p95_ms) : "-"));
    tr.appendChild(el("td", null, fmtOffset(w.clock_offset_us, w.rtt_us)));
    tb.appendChild(tr);
  });
}

function renderMetrics(m) {
  var root = document.getElementById("metrics");
  root.textContent = "";
  var series = [];
  (m.counters || []).forEach(function (c) { series.push({ name: c.name, value: c.value }); });
  (m.gauges || []).forEach(function (g) { series.push({ name: g.name, value: g.value }); });
  if (!series.length) {
    root.appendChild(el("span", "muted", "no metrics yet"));
    return;
  }
  series.forEach(function (s) {
    var h = history[s.name] || (history[s.name] = []);
    h.push(s.value);
    if (h.length > HISTORY_CAP) h.shift();
    var card = el("div", "card");
    card.appendChild(el("h3", null, s.name));
    card.appendChild(el("div", "muted", Number(s.value).toLocaleString()));
    spark(card.appendChild(el("canvas")), h);
    root.appendChild(card);
  });

  var tb = document.getElementById("quantiles");
  tb.textContent = "";
  if (!m.histograms || !m.histograms.length) {
    tb.appendChild(el("tr")).appendChild(el("td", "muted", "no histograms yet")).colSpan = 5;
    return;
  }
  m.histograms.forEach(function (hg) {
    var tr = el("tr");
    tr.appendChild(el("td", null, hg.name));
    tr.appendChild(el("td", null, String(hg.count)));
    tr.appendChild(el("td", null, fmt(hg.p50, 5)));
    tr.appendChild(el("td", null, fmt(hg.p95, 5)));
    tr.appendChild(el("td", null, fmt(hg.p99, 5)));
    tb.appendChild(tr);
  });
}

function poll() {
  fetch("/progress").then(function (r) { return r.ok ? r.json() : null; }).then(function (p) {
    if (p) { renderStages(p); renderCampaigns(p); renderFabric(p); }
  }).catch(function () {});
  fetch("/metrics.json").then(function (r) { return r.ok ? r.json() : null; }).then(function (m) {
    if (m) renderMetrics(m);
  }).catch(function () {});
}

function tail() {
  var status = document.getElementById("status");
  var es = new EventSource("/events?sse=1");
  es.onopen = function () { status.textContent = "live"; status.className = "chip done"; };
  es.onerror = function () { status.textContent = "reconnecting"; status.className = "chip running"; };
  es.onmessage = function (msg) {
    var ev;
    try { ev = JSON.parse(msg.data); } catch (e) { return; }
    var line = "#" + ev.seq + " " + ev.t_ms.toFixed(1) + "ms " + ev.kind + " " + ev.name;
    if (ev.attrs) line += " " + JSON.stringify(ev.attrs);
    logLines.push(line);
    if (logLines.length > LOG_CAP) logLines.shift();
    var log = document.getElementById("eventlog");
    log.textContent = logLines.join("\n");
    log.scrollTop = log.scrollHeight;
  };
}

poll();
setInterval(poll, 1000);
tail();
</script>
</body>
</html>
`
