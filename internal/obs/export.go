package obs

import (
	"encoding/json"
	"io"
	"sort"
	"time"
)

// SpanJSON is the JSON shape of one span: attributes flattened into an
// object, events and children nested.
type SpanJSON struct {
	Name       string         `json:"name"`
	Start      time.Time      `json:"start"`
	End        *time.Time     `json:"end,omitempty"`
	DurationMS float64        `json:"duration_ms"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Events     []EventJSON    `json:"events,omitempty"`
	Children   []SpanJSON     `json:"children,omitempty"`
}

// EventJSON is the JSON shape of one event.
type EventJSON struct {
	Time  time.Time      `json:"time"`
	Name  string         `json:"name"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

func attrsMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}

// Export converts the span (and its subtree) to its JSON shape.
func (s *Span) Export() SpanJSON {
	if s == nil {
		return SpanJSON{}
	}
	s.o.mu.Lock()
	name, start, end := s.name, s.start, s.end
	attrs := append([]Attr(nil), s.attrs...)
	events := append([]Event(nil), s.events...)
	children := append([]*Span(nil), s.children...)
	s.o.mu.Unlock()

	out := SpanJSON{Name: name, Start: start, Attrs: attrsMap(attrs)}
	if !end.IsZero() {
		e := end
		out.End = &e
		out.DurationMS = float64(end.Sub(start)) / float64(time.Millisecond)
	}
	for _, ev := range events {
		out.Events = append(out.Events, EventJSON{Time: ev.Time, Name: ev.Name, Attrs: attrsMap(ev.Attrs)})
	}
	for _, c := range children {
		out.Children = append(out.Children, c.Export())
	}
	return out
}

// MarshalJSON renders the span tree.
func (s *Span) MarshalJSON() ([]byte, error) { return json.Marshal(s.Export()) }

// ChromeEvent is one entry of the Chrome trace-event format ("X" complete
// spans, "i" instant events), loadable in chrome://tracing and Perfetto.
type ChromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds since trace epoch
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"` // instant-event scope
	Args  map[string]any `json:"args,omitempty"`
}

// ChromeTrace flattens every recorded span into the Chrome trace-event
// list, ordered by ts. Span depth maps to the tid column so nesting
// renders as stacked tracks. The depth-first walk alone does not yield
// monotonic timestamps (an event recorded after a child span started
// would land later in the list but earlier in ts), so the list is
// stably sorted by ts before returning — Perfetto and chrome://tracing
// both want ordered input.
func (o *Observer) ChromeTrace() []ChromeEvent {
	if o == nil {
		return nil
	}
	epoch := o.epoch
	var out []ChromeEvent
	var walk func(s SpanJSON, depth int)
	walk = func(s SpanJSON, depth int) {
		ts := float64(s.Start.Sub(epoch)) / float64(time.Microsecond)
		ev := ChromeEvent{Name: s.Name, Phase: "X", TS: ts, PID: 1, TID: depth, Args: s.Attrs}
		if s.End != nil {
			ev.Dur = float64(s.End.Sub(s.Start)) / float64(time.Microsecond)
		}
		out = append(out, ev)
		for _, e := range s.Events {
			out = append(out, ChromeEvent{
				Name:  e.Name,
				Phase: "i",
				TS:    float64(e.Time.Sub(epoch)) / float64(time.Microsecond),
				PID:   1,
				TID:   depth,
				Scope: "t",
				Args:  e.Attrs,
			})
		}
		for _, c := range s.Children {
			walk(c, depth+1)
		}
	}
	for _, root := range o.Roots() {
		walk(root.Export(), 0)
	}
	// Relayed worker spans render as extra process lanes (pid 2+), giving
	// one merged multi-process timeline. The lane metadata ("M" records)
	// is emitted only when remote spans exist, so single-process traces
	// keep exactly one event per span/event as before.
	out = append(out, o.remoteChromeEvents(epoch.UnixNano()/int64(time.Microsecond))...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].TS < out[j].TS })
	return out
}

// Trace is the complete export of one observed run: the span trees, the
// flat Chrome-compatible event list, and a metrics snapshot.
type Trace struct {
	Spans []SpanJSON `json:"spans"`
	// RemoteSpans are span records relayed from other processes (fabric
	// workers), timestamps already rebased onto this process's clock.
	RemoteSpans  []RemoteSpan     `json:"remote_spans,omitempty"`
	ChromeEvents []ChromeEvent    `json:"chrome_events,omitempty"`
	Metrics      RegistrySnapshot `json:"metrics"`
}

// Export snapshots the observer into its serialisable Trace form.
func (o *Observer) Export() Trace {
	var t Trace
	if o == nil {
		return t
	}
	for _, root := range o.Roots() {
		t.Spans = append(t.Spans, root.Export())
	}
	t.RemoteSpans = o.RemoteSpans()
	t.ChromeEvents = o.ChromeTrace()
	t.Metrics = o.Metrics().Snapshot()
	return t
}

// WriteTrace writes the indented JSON Trace export to w.
func (o *Observer) WriteTrace(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(o.Export())
}

// writeJSON writes v as indented JSON, ignoring encode errors (HTTP path).
func writeJSON(w io.Writer, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
