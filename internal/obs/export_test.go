package obs

import (
	"encoding/json"
	"testing"
)

// chromeFixture builds a trace whose raw depth-first walk would violate ts
// order: the root records an event AFTER its child span started, so
// without sorting the instant lands before the child in the list but
// after it in time.
func chromeFixture() *Observer {
	o := New(WithClock(fakeClock()))
	root := o.StartSpan("integrate")     // t+1ms
	child := root.StartChild("condense") // t+2ms
	child.Event("merge")                 // t+3ms
	child.End()                          // t+4ms
	root.Event("late")                   // t+5ms — after condense, walk emits it first
	grand := root.StartChild("map")      // t+6ms
	grand.End()                          // t+7ms
	root.End()                           // t+8ms
	return o
}

func TestChromeTraceIsValidJSON(t *testing.T) {
	events := chromeFixture().ChromeTrace()
	raw, err := json.Marshal(events)
	if err != nil {
		t.Fatal(err)
	}
	var back []map[string]any
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("chrome trace does not round-trip as JSON: %v", err)
	}
	if len(back) != len(events) {
		t.Fatalf("round-trip lost events: %d != %d", len(back), len(events))
	}
	for i, ev := range back {
		ph, _ := ev["ph"].(string)
		if ph != "X" && ph != "i" {
			t.Errorf("event %d has phase %q, want X or i", i, ph)
		}
		if _, ok := ev["ts"].(float64); !ok {
			t.Errorf("event %d missing numeric ts", i)
		}
	}
}

func TestChromeTraceTimestampsMonotonic(t *testing.T) {
	events := chromeFixture().ChromeTrace()
	if len(events) != 5 {
		t.Fatalf("want 5 events (3 spans + 2 instants), got %d", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].TS < events[i-1].TS {
			t.Fatalf("ts not monotonic: event %d (%s, ts=%v) after %s ts=%v",
				i, events[i].Name, events[i].TS, events[i-1].Name, events[i-1].TS)
		}
	}
	// The root's late event must have been reordered after "condense".
	idx := map[string]int{}
	for i, ev := range events {
		idx[ev.Name] = i
	}
	if idx["late"] < idx["condense"] {
		t.Errorf("late event not sorted after the child it follows in time: %v", events)
	}
}

// TestChromeTraceNestingPreserved: sorting must not disturb the tid-based
// nesting — children keep a deeper tid than their parents and stay inside
// the parent's [ts, ts+dur] window.
func TestChromeTraceNestingPreserved(t *testing.T) {
	events := chromeFixture().ChromeTrace()
	byName := map[string]ChromeEvent{}
	for _, ev := range events {
		byName[ev.Name] = ev
	}
	root, condense, mapped := byName["integrate"], byName["condense"], byName["map"]
	if root.TID != 0 || condense.TID != 1 || mapped.TID != 1 {
		t.Fatalf("depth/tid mapping broken: root=%d condense=%d map=%d",
			root.TID, condense.TID, mapped.TID)
	}
	for _, child := range []ChromeEvent{condense, mapped} {
		if child.TS < root.TS || child.TS+child.Dur > root.TS+root.Dur {
			t.Errorf("child %s [%v, %v] escapes parent [%v, %v]",
				child.Name, child.TS, child.TS+child.Dur, root.TS, root.TS+root.Dur)
		}
	}
}
