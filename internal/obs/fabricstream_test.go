// External test package: these tests drive obs.Serve with a live fabric
// campaign publishing onto the bus, which package obs cannot import
// without a cycle.
package obs_test

import (
	"bufio"
	"context"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/attrs"
	"repro/internal/fabric"
	"repro/internal/faultsim"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/testutil"
)

func streamCampaign(t *testing.T, trials int) faultsim.Campaign {
	t.Helper()
	g := graph.New()
	crits := map[string]float64{"a": 12, "b": 3, "c": 7, "d": 1}
	for _, n := range []string{"a", "b", "c", "d"} {
		if err := g.AddNode(n, attrs.New(map[attrs.Kind]float64{attrs.Criticality: crits[n]})); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range []struct {
		from, to string
		w        float64
	}{
		{"a", "b", 0.6}, {"b", "c", 0.4}, {"c", "d", 0.5}, {"d", "a", 0.3},
	} {
		if err := g.SetEdge(e.from, e.to, e.w); err != nil {
			t.Fatal(err)
		}
	}
	return faultsim.Campaign{
		Graph: g, HWOf: map[string]string{"a": "h1", "b": "h1", "c": "h2", "d": "h2"},
		Trials: trials, Seed: 11, CriticalThreshold: 10,
	}
}

// waitSubscribersGone polls until the bus has no registered subscribers.
func waitSubscribersGone(t *testing.T, bus *obs.Bus) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for bus.Subscribers() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("bus still has %d subscribers; disconnected client not unregistered", bus.Subscribers())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestEventsSSEClientDisconnectMidReplay: a client that opens /events
// with a deep replay backlog and vanishes after a few events must be
// unregistered from the bus, and later publishes must proceed without
// panics or phantom drop accounting.
func TestEventsSSEClientDisconnectMidReplay(t *testing.T) {
	testutil.CheckGoroutines(t)
	t.Cleanup(http.DefaultClient.CloseIdleConnections)
	bus := obs.NewBus(512)
	defer bus.Close()
	for i := 0; i < 200; i++ {
		bus.Publish("event", "pre", obs.Int("i", i))
	}
	srv, err := obs.Serve("127.0.0.1:0", obs.ServerConfig{Bus: bus})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet,
		"http://"+srv.Addr()+"/events?sse=1&from=1", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if bus.Subscribers() != 1 {
		t.Fatalf("Subscribers = %d after connect, want 1", bus.Subscribers())
	}
	// Read a couple of replayed frames, then disconnect mid-replay.
	sc := bufio.NewScanner(resp.Body)
	for lines := 0; lines < 4 && sc.Scan(); lines++ {
	}
	cancel()
	resp.Body.Close()

	waitSubscribersGone(t, bus)
	before := bus.Dropped()
	for i := 0; i < 50; i++ {
		bus.Publish("event", "post", obs.Int("i", i))
	}
	if got := bus.Dropped(); got != before {
		t.Errorf("Dropped grew %d -> %d after the only subscriber left", before, got)
	}
}

// TestServerShutdownWithFabricFedStream: shutting the server down while a
// distributed fabric campaign is streaming onto its bus and an /events
// client is attached must return promptly, unregister the subscriber and
// leave the campaign itself unharmed.
func TestServerShutdownWithFabricFedStream(t *testing.T) {
	testutil.CheckGoroutines(t)
	t.Cleanup(http.DefaultClient.CloseIdleConnections)
	bus := obs.NewBus(4096)
	defer bus.Close()
	srv, err := obs.Serve("127.0.0.1:0", obs.ServerConfig{Bus: bus})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := streamCampaign(t, 12800)
	pl := fabric.NewPipeListener()
	serveDone := make(chan error, 1)
	go func() {
		_, _, err := fabric.Serve(context.Background(), fabric.Config{
			Campaign: c, Listener: pl, Bus: bus,
		})
		serveDone <- err
	}()
	wctx, wcancel := context.WithCancel(context.Background())
	defer wcancel()
	workerDone := make(chan struct{})
	go func() {
		defer close(workerDone)
		_ = fabric.RunWorker(wctx, fabric.WorkerConfig{
			Campaign: c, Dial: pl.Dial(), Name: "sw",
			HeartbeatEvery: 20 * time.Millisecond,
			BackoffBase:    2 * time.Millisecond, MaxReconnects: 100,
		})
	}()

	// Attach a live stream and wait until fabric events flow through it.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet,
		"http://"+srv.Addr()+"/events?sse=1", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sawFabric := false
	for sc.Scan() {
		if strings.Contains(sc.Text(), "fabric_") {
			sawFabric = true
			break
		}
	}
	if !sawFabric {
		t.Fatal("stream closed before any fabric event arrived")
	}

	shutCtx, shutCancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer shutCancel()
	done := make(chan error, 1)
	go func() { done <- srv.Shutdown(shutCtx) }()
	select {
	case <-done:
		// Returned; an active stream must not wedge shutdown.
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown hung on a fabric-fed stream")
	}
	cancel()
	resp.Body.Close()
	waitSubscribersGone(t, bus)

	// The campaign outlives its dashboard: it must still complete.
	if err := <-serveDone; err != nil {
		t.Fatalf("fabric Serve after server shutdown: %v", err)
	}
	wcancel()
	<-workerDone
}
