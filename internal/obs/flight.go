package obs

// FlightRecorder bundles everything needed to understand one run after
// the fact — the trace tree (local + relayed remote spans), the merged
// multi-process Chrome trace, a metrics snapshot, the progress model,
// a bounded tail of the event stream, the binary's build identity, and
// any attached artifacts (the decision ledger) — into one self-contained
// directory. CLIs expose it as `-flight-record dir/`; every distributed
// campaign gets a post-mortem archive that renders standalone.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// DefaultFlightTail is the event-tail capacity NewFlightRecorder(.., 0)
// keeps: enough for the closing minutes of a large campaign without
// letting a long-running process grow the recorder unboundedly.
const DefaultFlightTail = 4096

// FlightRecorder accumulates run state and writes the bundle at exit.
// Safe for concurrent use; the bus sink it registers is drop-oldest, so
// recording can never stall a publisher.
type FlightRecorder struct {
	obs     *Observer
	tracker *Tracker

	mu      sync.Mutex
	tail    []BusEvent // ring storage
	head, n int
	dropped uint64
	files   map[string]string // bundle name -> source path
}

// NewFlightRecorder builds a recorder over the given components (any may
// be nil — the corresponding bundle entries are simply omitted). When bus
// is non-nil the recorder attaches a sink keeping the most recent tailCap
// events (0 = DefaultFlightTail); attach before concurrent publishing,
// as with any bus sink.
func NewFlightRecorder(o *Observer, bus *Bus, t *Tracker, tailCap int) *FlightRecorder {
	if tailCap <= 0 {
		tailCap = DefaultFlightTail
	}
	fr := &FlightRecorder{
		obs:     o,
		tracker: t,
		tail:    make([]BusEvent, tailCap),
		files:   map[string]string{},
	}
	if bus != nil {
		bus.Attach(fr.record)
	}
	return fr
}

// record is the bus sink: a drop-oldest ring append.
func (fr *FlightRecorder) record(ev BusEvent) {
	fr.mu.Lock()
	if fr.n == len(fr.tail) {
		fr.head = (fr.head + 1) % len(fr.tail)
		fr.n--
		fr.dropped++
	}
	fr.tail[(fr.head+fr.n)%len(fr.tail)] = ev
	fr.n++
	fr.mu.Unlock()
}

// AttachFile registers an external artifact (a ledger, a checkpoint) to
// be copied into the bundle under the given name. Missing sources are
// noted in the manifest at Write time rather than failing the bundle.
func (fr *FlightRecorder) AttachFile(name, src string) {
	if fr == nil || name == "" || src == "" {
		return
	}
	fr.mu.Lock()
	fr.files[filepath.Base(name)] = src
	fr.mu.Unlock()
}

// FlightManifest is the bundle's manifest.json: what was written, how
// large, and what was lost to bounds on the way.
type FlightManifest struct {
	// Files maps bundle-relative names to their byte sizes.
	Files map[string]int64 `json:"files"`
	// Events is the number of event-tail records written;
	// EventsDropped counts tail-ring evictions (the stream outgrew the
	// bounded tail, oldest first).
	Events        int    `json:"events"`
	EventsDropped uint64 `json:"events_dropped,omitempty"`
	// RemoteSpans is the number of relayed worker spans in the trace.
	RemoteSpans int `json:"remote_spans,omitempty"`
	// Skipped notes attached artifacts that could not be copied
	// (name -> error), without failing the bundle.
	Skipped map[string]string `json:"skipped,omitempty"`
}

// Write renders the bundle into dir (created if needed):
//
//	manifest.json      this manifest (written last, so its presence
//	                   marks a complete bundle)
//	trace.json         full Trace export: spans, remote spans, metrics
//	chrome_trace.json  the merged multi-process Chrome trace alone, in
//	                   the {"traceEvents": [...]} container Perfetto and
//	                   chrome://tracing load directly
//	metrics.json       registry snapshot
//	progress.json      progress-tracker snapshot
//	events.ndjson      bounded tail of the event stream, one per line
//	buildinfo.json     binary identity (module, VCS, toolchain)
//	<attached>         copies of artifacts registered via AttachFile
func (fr *FlightRecorder) Write(dir string) (FlightManifest, error) {
	man := FlightManifest{Files: map[string]int64{}}
	if fr == nil {
		return man, fmt.Errorf("obs: nil flight recorder")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return man, fmt.Errorf("obs: flight bundle: %w", err)
	}
	put := func(name string, render func(io.Writer) error) error {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("obs: flight bundle %s: %w", name, err)
		}
		rerr := render(f)
		cerr := f.Close()
		if rerr == nil {
			rerr = cerr
		}
		if rerr != nil {
			return fmt.Errorf("obs: flight bundle %s: %w", name, rerr)
		}
		if fi, err := os.Stat(path); err == nil {
			man.Files[name] = fi.Size()
		}
		return nil
	}
	asJSON := func(v any) func(io.Writer) error {
		return func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(v)
		}
	}

	if fr.obs != nil {
		if err := put("trace.json", fr.obs.WriteTrace); err != nil {
			return man, err
		}
		if err := put("chrome_trace.json", asJSON(map[string]any{
			"traceEvents": fr.obs.ChromeTrace(),
		})); err != nil {
			return man, err
		}
		if err := put("metrics.json", asJSON(fr.obs.Metrics().Snapshot())); err != nil {
			return man, err
		}
		man.RemoteSpans = len(fr.obs.RemoteSpans())
	}
	if fr.tracker != nil {
		if err := put("progress.json", asJSON(fr.tracker.Snapshot())); err != nil {
			return man, err
		}
	}

	fr.mu.Lock()
	tail := make([]BusEvent, 0, fr.n)
	for i := 0; i < fr.n; i++ {
		tail = append(tail, fr.tail[(fr.head+i)%len(fr.tail)])
	}
	man.EventsDropped = fr.dropped
	files := make(map[string]string, len(fr.files))
	for k, v := range fr.files {
		files[k] = v
	}
	fr.mu.Unlock()

	man.Events = len(tail)
	if err := put("events.ndjson", func(w io.Writer) error {
		enc := json.NewEncoder(w)
		for _, ev := range tail {
			if err := enc.Encode(ev); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return man, err
	}
	if err := put("buildinfo.json", asJSON(CollectBuildInfo())); err != nil {
		return man, err
	}

	for name, src := range files {
		err := put(name, func(w io.Writer) error {
			in, err := os.Open(src)
			if err != nil {
				return err
			}
			defer in.Close()
			_, err = io.Copy(w, in)
			return err
		})
		if err != nil {
			if man.Skipped == nil {
				man.Skipped = map[string]string{}
			}
			man.Skipped[name] = err.Error()
			_ = os.Remove(filepath.Join(dir, name))
			delete(man.Files, name)
		}
	}

	if err := put("manifest.json", asJSON(&man)); err != nil {
		return man, err
	}
	return man, nil
}
