package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestFlightRecorderBundle(t *testing.T) {
	bus := NewBus(64)
	defer bus.Close()
	tracker := NewTracker(bus)
	o := New(WithBus(bus))
	fr := NewFlightRecorder(o, bus, tracker, 8)

	sp := o.StartSpan("stage")
	sp.End()
	o.AddRemoteSpans(RemoteSpan{Worker: "w0", Name: "evaluate", ID: 2, Parent: 1})
	for i := 0; i < 12; i++ { // overflow the 8-slot tail
		bus.Publish("event", "tick", Int("i", i))
	}

	art := filepath.Join(t.TempDir(), "ledger.jsonl")
	if err := os.WriteFile(art, []byte(`{"x":1}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	fr.AttachFile("ledger.jsonl", art)
	fr.AttachFile("gone.json", filepath.Join(t.TempDir(), "missing"))

	dir := t.TempDir()
	man, err := fr.Write(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"manifest.json", "trace.json", "chrome_trace.json", "metrics.json",
		"progress.json", "events.ndjson", "buildinfo.json", "ledger.jsonl",
	} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("bundle missing %s: %v", name, err)
		}
		if name != "manifest.json" {
			if _, ok := man.Files[name]; !ok {
				t.Errorf("manifest does not list %s", name)
			}
		}
	}
	if man.Events != 8 || man.EventsDropped == 0 {
		t.Errorf("tail kept %d events (%d dropped), want 8 kept and a nonzero drop count",
			man.Events, man.EventsDropped)
	}
	if man.RemoteSpans != 1 {
		t.Errorf("manifest counts %d remote spans, want 1", man.RemoteSpans)
	}
	if _, listed := man.Files["gone.json"]; listed || man.Skipped["gone.json"] == "" {
		t.Errorf("missing artifact should be skipped, not listed: files=%v skipped=%v",
			man.Files, man.Skipped)
	}

	// The event tail is valid NDJSON of schema-shaped events.
	raw, err := os.ReadFile(filepath.Join(dir, "events.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	lines := 0
	sc := bufio.NewScanner(bytes.NewReader(raw))
	for sc.Scan() {
		var ev BusEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("events.ndjson line %d: %v", lines+1, err)
		}
		lines++
	}
	if lines != man.Events {
		t.Errorf("events.ndjson holds %d lines, manifest says %d", lines, man.Events)
	}

	// manifest.json on disk round-trips to the returned manifest.
	rawMan, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var onDisk FlightManifest
	if err := json.Unmarshal(rawMan, &onDisk); err != nil {
		t.Fatal(err)
	}
	if onDisk.Events != man.Events || onDisk.RemoteSpans != man.RemoteSpans {
		t.Errorf("manifest on disk %+v differs from returned %+v", onDisk, man)
	}

	// The attached artifact was copied byte-for-byte.
	copied, err := os.ReadFile(filepath.Join(dir, "ledger.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if string(copied) != `{"x":1}`+"\n" {
		t.Errorf("attached artifact corrupted: %q", copied)
	}
}

func TestFlightRecorderNil(t *testing.T) {
	var fr *FlightRecorder
	fr.AttachFile("x", "y") // must not panic
	if _, err := fr.Write(t.TempDir()); err == nil {
		t.Fatal("nil recorder Write should error")
	}
}
