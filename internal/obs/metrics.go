package obs

import (
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds named counters, gauges and histograms. Instrument lookup
// is mutex-guarded; the instruments themselves update via atomics (counter,
// gauge) or a short critical section (histogram), so hot paths should cache
// the instrument pointer rather than re-looking it up per update. All
// methods are safe on a nil receiver: lookups return nil instruments whose
// update methods are no-ops.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	name, help string
	v          atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float metric that may go up and down.
type Gauge struct {
	name, help string
	bits       atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments by delta (CAS loop).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket cumulative histogram.
type Histogram struct {
	name, help string
	bounds     []float64 // sorted upper bounds; an implicit +Inf bucket follows
	mu         sync.Mutex
	counts     []uint64 // len(bounds)+1
	sum        float64
	count      uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Quantile estimates the q-quantile (0 < q < 1) of the observed samples
// by linear interpolation inside the bucket containing the rank,
// Prometheus histogram_quantile-style. The estimate inherits the bucket
// resolution: exact at bucket boundaries, interpolated within. Samples in
// the +Inf overflow bucket clamp to the highest finite bound. Returns NaN
// on a nil/empty histogram or an out-of-range q.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return math.NaN()
	}
	h.mu.Lock()
	cum := make([]uint64, len(h.counts))
	var run uint64
	for i, c := range h.counts {
		run += c
		cum[i] = run
	}
	total := h.count
	bounds := h.bounds
	h.mu.Unlock()
	return bucketQuantile(bounds, cum, total, q)
}

// bucketQuantile interpolates a quantile from cumulative bucket counts.
// cum has len(bounds)+1 entries (the last is the +Inf bucket == total).
func bucketQuantile(bounds []float64, cum []uint64, total uint64, q float64) float64 {
	if total == 0 || math.IsNaN(q) || q <= 0 || q >= 1 || len(cum) != len(bounds)+1 {
		return math.NaN()
	}
	rank := q * float64(total)
	i := sort.Search(len(cum), func(i int) bool { return float64(cum[i]) >= rank })
	if i >= len(bounds) {
		// Overflow bucket: no upper bound to interpolate against.
		if len(bounds) == 0 {
			return math.NaN()
		}
		return bounds[len(bounds)-1]
	}
	upper := bounds[i]
	lower := 0.0
	if i > 0 {
		lower = bounds[i-1]
	} else if upper <= 0 {
		// All-negative first bucket: no interpolation base below it.
		return upper
	}
	prev := 0.0
	if i > 0 {
		prev = float64(cum[i-1])
	}
	inBucket := float64(cum[i]) - prev
	if inBucket == 0 {
		return upper
	}
	return lower + (upper-lower)*(rank-prev)/inBucket
}

// Count returns the number of samples (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of samples (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Fixed bucket layouts.
var (
	// DefBuckets suits generic positive quantities (counts, weights).
	DefBuckets = []float64{0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
	// DurationBuckets suits sub-second code timings, in seconds
	// (1µs … 10s, roughly ×4 per step).
	DurationBuckets = []float64{
		1e-6, 4e-6, 16e-6, 64e-6, 256e-6, 1e-3, 4e-3, 16e-3, 64e-3, 256e-3, 1, 4, 10,
	}
)

// Counter returns (registering on first use) the named counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name, help: help}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (registering on first use) the named gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{name: name, help: help}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (registering on first use) the named histogram with
// the given bucket upper bounds; nil buckets means DefBuckets. The bucket
// layout of an already-registered histogram is not changed.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		if buckets == nil {
			buckets = DefBuckets
		}
		bounds := append([]float64(nil), buckets...)
		sort.Float64s(bounds)
		h = &Histogram{name: name, help: help, bounds: bounds, counts: make([]uint64, len(bounds)+1)}
		r.histograms[name] = h
	}
	return h
}

// CounterSnapshot is one counter's exported state.
type CounterSnapshot struct {
	Name  string `json:"name"`
	Help  string `json:"help,omitempty"`
	Value int64  `json:"value"`
}

// GaugeSnapshot is one gauge's exported state.
type GaugeSnapshot struct {
	Name  string  `json:"name"`
	Help  string  `json:"help,omitempty"`
	Value float64 `json:"value"`
}

// HistogramSnapshot is one histogram's exported state. Buckets are
// cumulative, Prometheus-style; the final implicit +Inf bucket equals
// Count.
type HistogramSnapshot struct {
	Name    string    `json:"name"`
	Help    string    `json:"help,omitempty"`
	Bounds  []float64 `json:"bounds"`
	Buckets []uint64  `json:"buckets"`
	Sum     float64   `json:"sum"`
	Count   uint64    `json:"count"`
	// P50/P95/P99 are bucket-interpolated quantile estimates (see
	// Histogram.Quantile), 0 while the histogram is empty.
	P50 float64 `json:"p50,omitempty"`
	P95 float64 `json:"p95,omitempty"`
	P99 float64 `json:"p99,omitempty"`
}

// Quantile estimates the q-quantile from the snapshot's cumulative
// buckets (see Histogram.Quantile for the interpolation contract).
func (h HistogramSnapshot) Quantile(q float64) float64 {
	return bucketQuantile(h.Bounds, h.Buckets, h.Count, q)
}

// RegistrySnapshot is a point-in-time copy of every instrument, sorted by
// name — the JSON export format.
type RegistrySnapshot struct {
	Counters   []CounterSnapshot   `json:"counters,omitempty"`
	Gauges     []GaugeSnapshot     `json:"gauges,omitempty"`
	Histograms []HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures the current state of every instrument.
func (r *Registry) Snapshot() RegistrySnapshot {
	var snap RegistrySnapshot
	if r == nil {
		return snap
	}
	r.mu.Lock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	hists := make([]*Histogram, 0, len(r.histograms))
	for _, h := range r.histograms {
		hists = append(hists, h)
	}
	r.mu.Unlock()

	for _, c := range counters {
		snap.Counters = append(snap.Counters, CounterSnapshot{Name: c.name, Help: c.help, Value: c.Value()})
	}
	for _, g := range gauges {
		snap.Gauges = append(snap.Gauges, GaugeSnapshot{Name: g.name, Help: g.help, Value: g.Value()})
	}
	for _, h := range hists {
		h.mu.Lock()
		hs := HistogramSnapshot{
			Name:   h.name,
			Help:   h.help,
			Bounds: append([]float64(nil), h.bounds...),
			Sum:    h.sum,
			Count:  h.count,
		}
		cum := uint64(0)
		for _, c := range h.counts {
			cum += c
			hs.Buckets = append(hs.Buckets, cum)
		}
		h.mu.Unlock()
		if hs.Count > 0 {
			// sanitize: NaN is not valid JSON, so an unestimable quantile
			// (e.g. every sample in the +Inf bucket of a bound-less layout)
			// stays at the zero value.
			for _, pq := range []struct {
				dst *float64
				q   float64
			}{{&hs.P50, 0.50}, {&hs.P95, 0.95}, {&hs.P99, 0.99}} {
				if v := bucketQuantile(hs.Bounds, hs.Buckets, hs.Count, pq.q); !math.IsNaN(v) {
					*pq.dst = v
				}
			}
		}
		snap.Histograms = append(snap.Histograms, hs)
	}
	sort.Slice(snap.Counters, func(i, j int) bool { return snap.Counters[i].Name < snap.Counters[j].Name })
	sort.Slice(snap.Gauges, func(i, j int) bool { return snap.Gauges[i].Name < snap.Gauges[j].Name })
	sort.Slice(snap.Histograms, func(i, j int) bool { return snap.Histograms[i].Name < snap.Histograms[j].Name })
	return snap
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) {
	snap := r.Snapshot()
	for _, c := range snap.Counters {
		writeHeader(w, c.Name, c.Help, "counter")
		fmt.Fprintf(w, "%s %d\n", c.Name, c.Value)
	}
	for _, g := range snap.Gauges {
		writeHeader(w, g.Name, g.Help, "gauge")
		fmt.Fprintf(w, "%s %s\n", g.Name, formatFloat(g.Value))
	}
	for _, h := range snap.Histograms {
		writeHeader(w, h.Name, h.Help, "histogram")
		for i, b := range h.Bounds {
			fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", h.Name, escapeLabel(formatFloat(b)), h.Buckets[i])
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.Name, h.Count)
		fmt.Fprintf(w, "%s_sum %s\n", h.Name, formatFloat(h.Sum))
		fmt.Fprintf(w, "%s_count %d\n", h.Name, h.Count)
	}
}

// Prometheus returns the text exposition as a string.
func (r *Registry) Prometheus() string {
	var b strings.Builder
	r.WritePrometheus(&b)
	return b.String()
}

func writeHeader(w io.Writer, name, help, typ string) {
	if help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(help))
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the Prometheus text exposition
// format (0.0.4): backslash, double-quote and newline become \\, \" and
// \n. Everything else — UTF-8 included — passes through verbatim (unlike
// Go's %q, which escapes non-ASCII and is not what scrapers expect).
func escapeLabel(v string) string {
	return labelEscaper.Replace(v)
}

// escapeHelp escapes HELP text per the exposition format: backslash and
// newline only (quotes are legal in help strings).
func escapeHelp(v string) string {
	return helpEscaper.Replace(v)
}

var (
	labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	helpEscaper  = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
)

// Handler serves the registry over HTTP: the Prometheus text format at the
// registered path and the JSON snapshot when the request path ends in
// ".json" (or the Accept header asks for application/json).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if strings.HasSuffix(req.URL.Path, ".json") ||
			strings.Contains(req.Header.Get("Accept"), "application/json") {
			w.Header().Set("Content-Type", "application/json")
			writeJSON(w, r.Snapshot())
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(r.Prometheus()))
	})
}

// MetricsServer is a running HTTP endpoint exposing a registry.
type MetricsServer struct {
	srv  *http.Server
	addr string
	done chan struct{}

	closeOnce sync.Once
	closeErr  error
}

// Addr returns the bound listen address (useful with ":0").
func (m *MetricsServer) Addr() string {
	if m == nil {
		return ""
	}
	return m.addr
}

// Close shuts the server down immediately: the listener and any active
// connections are closed and the serving goroutine has exited by the time
// Close returns. Idempotent — concurrent and repeated calls all observe
// the first call's result.
func (m *MetricsServer) Close() error {
	if m == nil {
		return nil
	}
	m.closeOnce.Do(func() {
		m.closeErr = m.srv.Close()
		<-m.done
	})
	return m.closeErr
}

// Shutdown stops the server gracefully: in-flight scrapes may finish until
// ctx expires, after which remaining connections are closed hard. Like
// Close it waits for the serving goroutine to exit and is idempotent with
// Close — whichever runs first wins.
func (m *MetricsServer) Shutdown(ctx context.Context) error {
	if m == nil {
		return nil
	}
	m.closeOnce.Do(func() {
		m.closeErr = m.srv.Shutdown(ctx)
		if m.closeErr != nil {
			_ = m.srv.Close() // deadline hit: drop the stragglers
		}
		<-m.done
	})
	return m.closeErr
}

// Serve starts an HTTP server on addr exposing the registry at /metrics
// (Prometheus text) and /metrics.json (JSON snapshot), plus the standard
// operational endpoints (/healthz, /buildinfo, /dashboard). The server
// runs until Close. For the streaming endpoints (/events, /progress) use
// the package-level Serve with a ServerConfig carrying a Bus and Tracker.
func (r *Registry) Serve(addr string) (*MetricsServer, error) {
	return Serve(addr, ServerConfig{Registry: r})
}
