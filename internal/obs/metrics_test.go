package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	c := r.Counter("a", "")
	g := r.Gauge("b", "")
	h := r.Histogram("c", "", nil)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry handed out instruments")
	}
	c.Inc()
	c.Add(4)
	g.Set(1)
	g.Add(2)
	h.Observe(3)
	h.ObserveDuration(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil instruments accumulated state")
	}
	if snap := r.Snapshot(); len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Error("nil registry snapshot non-empty")
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("merges_total", "merges")
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters only go up
	if c.Value() != 3 {
		t.Errorf("counter = %d", c.Value())
	}
	if r.Counter("merges_total", "other help") != c {
		t.Error("re-registration returned a new counter")
	}
	g := r.Gauge("escape_rate", "rate")
	g.Set(0.25)
	g.Add(0.5)
	if v := g.Value(); v < 0.7499 || v > 0.7501 {
		t.Errorf("gauge = %g", v)
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d", h.Count())
	}
	snap := r.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	hs := snap.Histograms[0]
	// le=1 -> {0.5, 1}; le=10 -> +{5}; le=100 -> +{50}; +Inf -> 5.
	want := []uint64{2, 3, 4}
	for i, w := range want {
		if hs.Buckets[i] != w {
			t.Errorf("bucket[%d] = %d, want %d", i, hs.Buckets[i], w)
		}
	}
	if hs.Sum != 556.5 || hs.Count != 5 {
		t.Errorf("sum=%g count=%d", hs.Sum, hs.Count)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("sched_feasible_calls_total", "feasibility oracle calls").Add(42)
	r.Gauge("campaign_escape_rate", "running escape rate").Set(0.125)
	h := r.Histogram("sched_feasible_seconds", "oracle latency", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.5)

	text := r.Prometheus()
	for _, want := range []string{
		"# HELP sched_feasible_calls_total feasibility oracle calls",
		"# TYPE sched_feasible_calls_total counter",
		"sched_feasible_calls_total 42",
		"# TYPE campaign_escape_rate gauge",
		"campaign_escape_rate 0.125",
		"# TYPE sched_feasible_seconds histogram",
		`sched_feasible_seconds_bucket{le="0.001"} 1`,
		`sched_feasible_seconds_bucket{le="0.01"} 1`,
		`sched_feasible_seconds_bucket{le="+Inf"} 2`,
		"sched_feasible_seconds_sum 0.5005",
		"sched_feasible_seconds_count 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestSnapshotSortedAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total", "").Inc()
	r.Counter("aa_total", "").Inc()
	snap := r.Snapshot()
	if snap.Counters[0].Name != "aa_total" || snap.Counters[1].Name != "zz_total" {
		t.Errorf("not sorted: %+v", snap.Counters)
	}
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back RegistrySnapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Counters) != 2 {
		t.Errorf("round trip lost counters: %+v", back)
	}
}

func TestMetricsHTTPServer(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests_total", "requests").Add(7)
	srv, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	if text := get("/metrics"); !strings.Contains(text, "requests_total 7") {
		t.Errorf("prometheus endpoint: %s", text)
	}
	var snap RegistrySnapshot
	if err := json.Unmarshal([]byte(get("/metrics.json")), &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Counters) != 1 || snap.Counters[0].Value != 7 {
		t.Errorf("json endpoint: %+v", snap)
	}
}

// TestMetricsServerCloseIdempotent: Close must be safe to call repeatedly
// and from several goroutines at once — Finish and a context watcher may
// both fire — all observing the first call's result.
func TestMetricsServerCloseIdempotent(t *testing.T) {
	r := NewRegistry()
	srv, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	first := srv.Close()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if got := srv.Close(); got != first {
				t.Errorf("repeat Close = %v, want first result %v", got, first)
			}
		}()
	}
	wg.Wait()
	if err := srv.Shutdown(context.Background()); err != first {
		t.Errorf("Shutdown after Close = %v, want first result %v", err, first)
	}
	if _, err := http.Get("http://" + srv.Addr() + "/metrics"); err == nil {
		t.Error("listener still accepting after Close")
	}
}

// TestMetricsServerShutdownGraceful: Shutdown with a live context stops the
// listener and returns once the serving goroutine has exited.
func TestMetricsServerShutdownGraceful(t *testing.T) {
	r := NewRegistry()
	srv, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := http.Get("http://" + srv.Addr() + "/metrics"); err == nil {
		t.Error("listener still accepting after Shutdown")
	}
	if err := srv.Close(); err != nil {
		t.Errorf("Close after Shutdown = %v, want the first (nil) result", err)
	}
}

// TestNilMetricsServer: the nil receiver (telemetry off) is inert.
func TestNilMetricsServer(t *testing.T) {
	var srv *MetricsServer
	if srv.Addr() != "" || srv.Close() != nil || srv.Shutdown(context.Background()) != nil {
		t.Error("nil MetricsServer is not inert")
	}
}

func TestConcurrentInstrumentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", DurationBuckets)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(1e-5)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d", c.Value())
	}
	if g.Value() != 8000 {
		t.Errorf("gauge = %g", g.Value())
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %d", h.Count())
	}
}

// TestPrometheusEscaping: label values and HELP text must be escaped per
// the text exposition format — backslash, quote and newline in labels,
// backslash and newline in help.
func TestPrometheusEscaping(t *testing.T) {
	if got := escapeLabel(`back\slash "quote"` + "\nnewline"); got != `back\\slash \"quote\"\nnewline` {
		t.Errorf("escapeLabel = %q", got)
	}
	if got := escapeLabel("plain π value"); got != "plain π value" {
		t.Errorf("escapeLabel mangled UTF-8: %q", got)
	}
	if got := escapeHelp("a\\b\nc \"quotes stay\""); got != `a\\b\nc "quotes stay"` {
		t.Errorf("escapeHelp = %q", got)
	}

	r := NewRegistry()
	r.Counter("weird_total", "help with \\ and\nnewline").Inc()
	r.Histogram("lat_seconds", "", []float64{0.5}).Observe(0.1)
	text := r.Prometheus()
	if !strings.Contains(text, `# HELP weird_total help with \\ and\nnewline`) {
		t.Errorf("HELP not escaped:\n%s", text)
	}
	if strings.Contains(text, "\nnewline") {
		t.Errorf("raw newline leaked into exposition:\n%s", text)
	}
	if !strings.Contains(text, `lat_seconds_bucket{le="0.5"} 1`) {
		t.Errorf("bucket label mangled:\n%s", text)
	}
}

// TestMetricsContentTypes: the Prometheus endpoint must declare the 0.0.4
// text format; the JSON endpoint (by path or Accept header) application/json.
func TestMetricsContentTypes(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "").Inc()
	srv, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ct := func(path, accept string) string {
		req, err := http.NewRequest("GET", "http://"+srv.Addr()+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.Header.Get("Content-Type")
	}
	if got := ct("/metrics", ""); got != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("/metrics Content-Type = %q", got)
	}
	if got := ct("/metrics.json", ""); got != "application/json" {
		t.Errorf("/metrics.json Content-Type = %q", got)
	}
	if got := ct("/metrics", "application/json"); got != "application/json" {
		t.Errorf("/metrics with Accept: application/json Content-Type = %q", got)
	}
}

// TestMetricsServerShutdownAfterClose: a Shutdown racing or following Close
// must neither hang nor return a different error — the first terminator
// wins and every later call observes its result.
func TestMetricsServerShutdownAfterClose(t *testing.T) {
	r := NewRegistry()
	srv, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	first := srv.Close()
	for i := 0; i < 3; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		got := srv.Shutdown(ctx)
		cancel()
		if got != first {
			t.Fatalf("Shutdown #%d after Close = %v, want %v", i+1, got, first)
		}
	}
	if got := srv.Close(); got != first {
		t.Fatalf("Close after Shutdown-after-Close = %v, want %v", got, first)
	}
}
