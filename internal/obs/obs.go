// Package obs is the framework's stdlib-only telemetry subsystem: a
// hierarchical tracer, a metrics registry, and a structured event log.
//
// The paper's continuing-work section singles out measurement as the
// make-or-break capability ("developing techniques to determine and measure
// actual parameters such as 'influence' … is crucial"); obs is the
// corresponding engineering artifact. Every Integrate run can record one
// span per pipeline stage, every condensation step can log the merge it
// chose and why, and every fault-injection campaign can report running
// containment estimates — all exportable as a JSON trace tree, a flat
// Chrome-trace event list, and JSON/Prometheus metric snapshots.
//
// The zero value of the subsystem is "off": a nil *Observer (and the nil
// *Span / nil *Registry it hands out) is safe to call and does nothing, so
// instrumented code pays a single pointer comparison when no observer is
// installed.
//
// Typical use:
//
//	o := obs.New(obs.WithLogger(slog.Default()))
//	ctx := obs.NewContext(context.Background(), o)
//	ctx, span := obs.Start(ctx, "condense", obs.String("strategy", "H1"))
//	defer span.End()
//	span.Event("merge", obs.String("a", "p1a"), obs.Float("mutual", 0.76))
package obs

import (
	"context"
	"log/slog"
	"sync"
	"time"
)

// Attr is one key/value attribute attached to a span or event.
type Attr struct {
	Key   string
	Value any
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: v} }

// Int64 builds a 64-bit integer attribute.
func Int64(k string, v int64) Attr { return Attr{Key: k, Value: v} }

// Float builds a float attribute.
func Float(k string, v float64) Attr { return Attr{Key: k, Value: v} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Value: v} }

// Event is one timestamped structured record attached to a span.
type Event struct {
	Time  time.Time
	Name  string
	Attrs []Attr
}

// Span is one node of the trace tree: a named, timed region with
// attributes, events and children. All methods are safe on a nil receiver
// (they do nothing), which is the uninstrumented fast path.
type Span struct {
	o *Observer // owner; holds the lock guarding all span mutation

	name     string
	start    time.Time
	end      time.Time
	attrs    []Attr
	events   []Event
	children []*Span
}

// Observer bundles the tracer, the metrics registry and the event logger
// for one instrumented run (or one long-lived process). All methods are
// safe on a nil receiver and safe for concurrent use.
type Observer struct {
	mu       sync.Mutex
	epoch    time.Time
	roots    []*Span
	reg      *Registry
	logger   *slog.Logger
	now      func() time.Time
	profiler *Profiler
	bus      *Bus
	spanCap  int // max retained root spans; 0 = unbounded

	// remote holds span records relayed from other processes (fabric
	// workers), already rebased onto this process's clock; see remote.go.
	remote    []RemoteSpan
	remoteCap int // max retained remote spans; 0 = DefaultRemoteSpanCap
}

// Option configures New.
type Option func(*Observer)

// WithLogger mirrors every span start/end (at Debug) and every event (at
// Info) onto the given structured logger.
func WithLogger(l *slog.Logger) Option { return func(o *Observer) { o.logger = l } }

// WithClock overrides the time source (deterministic tests).
func WithClock(now func() time.Time) Option { return func(o *Observer) { o.now = now } }

// WithProfiler attaches a pprof profiler: instrumented code (the pipeline's
// stage runner) brackets each stage with StageStart/StageEnd so per-stage
// CPU profiles land next to the telemetry they explain.
func WithProfiler(p *Profiler) Option { return func(o *Observer) { o.profiler = p } }

// WithBus mirrors every span start/end and span event onto the streaming
// bus, turning the post-mortem trace tree into a live feed: condenser
// merges, race outcomes, search evaluations and campaign checkpoints all
// reach subscribers the moment they happen, with no changes at the
// instrumentation sites.
func WithBus(b *Bus) Option { return func(o *Observer) { o.bus = b } }

// WithSpanCap bounds the observer's root-span retention for long-running
// processes: once more than n root spans exist, starting a new one evicts
// the oldest root (and its whole subtree), incrementing the registry
// counter obs_spans_dropped by the number of spans discarded. n <= 0
// keeps the default unbounded accumulation.
func WithSpanCap(n int) Option { return func(o *Observer) { o.spanCap = n } }

// New builds an Observer with a fresh metrics registry.
func New(opts ...Option) *Observer {
	o := &Observer{reg: NewRegistry(), now: time.Now}
	for _, opt := range opts {
		opt(o)
	}
	o.epoch = o.now()
	return o
}

// Metrics returns the observer's registry (nil for a nil observer).
func (o *Observer) Metrics() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Profiler returns the attached profiler (nil for a nil observer or when
// none was attached; a nil *Profiler absorbs every call).
func (o *Observer) Profiler() *Profiler {
	if o == nil {
		return nil
	}
	return o.profiler
}

// Bus returns the streaming bus attached via WithBus (nil for a nil
// observer or when none was attached; a nil *Bus absorbs every call).
func (o *Observer) Bus() *Bus {
	if o == nil {
		return nil
	}
	return o.bus
}

// Logger returns the observer's structured logger, which may be nil.
func (o *Observer) Logger() *slog.Logger {
	if o == nil {
		return nil
	}
	return o.logger
}

// StartSpan opens a new root-level span.
func (o *Observer) StartSpan(name string, attrs ...Attr) *Span {
	if o == nil {
		return nil
	}
	s := &Span{o: o, name: name, attrs: attrs, start: o.now()}
	evicted := 0
	o.mu.Lock()
	o.roots = append(o.roots, s)
	if o.spanCap > 0 {
		for len(o.roots) > o.spanCap {
			evicted += countSpansLocked(o.roots[0])
			o.roots[0] = nil
			o.roots = o.roots[1:]
		}
	}
	o.mu.Unlock()
	if evicted > 0 {
		o.reg.Counter("obs_spans_dropped",
			"Spans evicted by the observer's root-span cap.").Add(int64(evicted))
	}
	o.logSpan("span start", name)
	if o.bus != nil {
		o.bus.publish("span_start", "", name, attrs)
	}
	return s
}

// countSpansLocked sizes a span subtree. Caller holds o.mu.
func countSpansLocked(s *Span) int {
	n := 1
	for _, c := range s.children {
		n += countSpansLocked(c)
	}
	return n
}

// Roots returns the top-level spans recorded so far.
func (o *Observer) Roots() []*Span {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]*Span(nil), o.roots...)
}

func (o *Observer) logSpan(msg, name string) {
	if o.logger != nil && o.logger.Enabled(context.Background(), slog.LevelDebug) {
		o.logger.Debug(msg, slog.String("span", name))
	}
}

func (o *Observer) logEvent(span, name string, attrs []Attr) {
	if o.logger == nil || !o.logger.Enabled(context.Background(), slog.LevelInfo) {
		return
	}
	args := make([]any, 0, 2*(len(attrs)+1))
	args = append(args, "span", span)
	for _, a := range attrs {
		args = append(args, a.Key, a.Value)
	}
	o.logger.Info(name, args...)
}

// StartChild opens a child span under s.
func (s *Span) StartChild(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	c := &Span{o: s.o, name: name, attrs: attrs, start: s.o.now()}
	s.o.mu.Lock()
	s.children = append(s.children, c)
	s.o.mu.Unlock()
	s.o.logSpan("span start", name)
	if s.o.bus != nil {
		s.o.bus.publish("span_start", s.name, name, attrs)
	}
	return c
}

// End closes the span. Ending twice keeps the first end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.o.now()
	first := false
	s.o.mu.Lock()
	if s.end.IsZero() {
		s.end = t
		first = true
	}
	s.o.mu.Unlock()
	s.o.logSpan("span end", s.name)
	if first && s.o.bus != nil {
		dur := float64(t.Sub(s.start)) / float64(time.Millisecond)
		s.o.bus.publish("span_end", "", s.name, []Attr{Float("duration_ms", dur)})
	}
}

// SetAttr appends attributes to the span.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.o.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.o.mu.Unlock()
}

// Event appends a timestamped structured event to the span and mirrors it
// to the observer's logger.
func (s *Span) Event(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	e := Event{Time: s.o.now(), Name: name, Attrs: attrs}
	s.o.mu.Lock()
	s.events = append(s.events, e)
	s.o.mu.Unlock()
	s.o.logEvent(s.name, name, attrs)
	if s.o.bus != nil {
		s.o.bus.publish("event", s.name, name, attrs)
	}
}

// Profiler returns the owning observer's profiler (nil on a nil span).
func (s *Span) Profiler() *Profiler {
	if s == nil {
		return nil
	}
	return s.o.Profiler()
}

// Name returns the span's name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the span's elapsed time (0 when unfinished or nil).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.o.mu.Lock()
	defer s.o.mu.Unlock()
	if s.end.IsZero() {
		return 0
	}
	return s.end.Sub(s.start)
}

// Children returns the span's child spans.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.o.mu.Lock()
	defer s.o.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Events returns the span's recorded events.
func (s *Span) Events() []Event {
	if s == nil {
		return nil
	}
	s.o.mu.Lock()
	defer s.o.mu.Unlock()
	return append([]Event(nil), s.events...)
}

// Context plumbing: an Observer and a current Span travel in a Context so
// deeply nested code can open child spans without threading them manually.

type observerKey struct{}
type spanKey struct{}

// NewContext returns a context carrying the observer.
func NewContext(ctx context.Context, o *Observer) context.Context {
	return context.WithValue(ctx, observerKey{}, o)
}

// FromContext extracts the observer (nil when absent).
func FromContext(ctx context.Context) *Observer {
	o, _ := ctx.Value(observerKey{}).(*Observer)
	return o
}

// ContextWithSpan returns a context carrying the span as the current one.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFromContext extracts the current span (nil when absent).
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// Start opens a span as a child of the context's current span (or as a
// root span of the context's observer when no span is current) and returns
// a derived context with the new span as current. With neither an observer
// nor a span in the context it returns (ctx, nil) untouched — the nil span
// absorbs all subsequent calls.
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	if parent := SpanFromContext(ctx); parent != nil {
		s := parent.StartChild(name, attrs...)
		return ContextWithSpan(ctx, s), s
	}
	if o := FromContext(ctx); o != nil {
		s := o.StartSpan(name, attrs...)
		return ContextWithSpan(ctx, s), s
	}
	return ctx, nil
}
