package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock hands out strictly increasing timestamps.
func fakeClock() func() time.Time {
	t := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	var mu sync.Mutex
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		t = t.Add(time.Millisecond)
		return t
	}
}

func TestNilObserverIsInert(t *testing.T) {
	var o *Observer
	s := o.StartSpan("x", String("k", "v"))
	if s != nil {
		t.Fatal("nil observer handed out a span")
	}
	// Every span method must absorb nil.
	s.End()
	s.SetAttr(Int("n", 1))
	s.Event("e", Float("w", 0.5))
	if s.StartChild("c") != nil {
		t.Error("nil span handed out a child")
	}
	if s.Name() != "" || s.Duration() != 0 || s.Children() != nil || s.Events() != nil {
		t.Error("nil span leaked state")
	}
	if o.Metrics() != nil || o.Roots() != nil || o.Logger() != nil {
		t.Error("nil observer leaked state")
	}
	if got := o.Export(); len(got.Spans) != 0 || len(got.ChromeEvents) != 0 {
		t.Error("nil observer exported spans")
	}
}

func TestSpanTreeAndExport(t *testing.T) {
	o := New(WithClock(fakeClock()))
	root := o.StartSpan("integrate", String("system", "demo"))
	cond := root.StartChild("condense", String("strategy", "H1"))
	cond.Event("merge", String("a", "p1"), String("b", "p2"), Float("mutual", 0.76))
	cond.Event("merge", String("a", "p3"), String("b", "p4"), Float("mutual", 0.37))
	cond.End()
	eval := root.StartChild("evaluate")
	eval.End()
	root.End()

	roots := o.Roots()
	if len(roots) != 1 || roots[0].Name() != "integrate" {
		t.Fatalf("roots = %v", roots)
	}
	if d := cond.Duration(); d <= 0 {
		t.Errorf("condense duration = %v", d)
	}
	kids := root.Children()
	if len(kids) != 2 || kids[0].Name() != "condense" || kids[1].Name() != "evaluate" {
		t.Fatalf("children = %v", kids)
	}
	if evs := cond.Events(); len(evs) != 2 || evs[0].Name != "merge" {
		t.Fatalf("events = %v", evs)
	}

	ex := root.Export()
	if ex.Attrs["system"] != "demo" {
		t.Errorf("root attrs = %v", ex.Attrs)
	}
	if len(ex.Children) != 2 || ex.Children[0].Attrs["strategy"] != "H1" {
		t.Errorf("child export = %+v", ex.Children)
	}
	if ex.DurationMS <= 0 || ex.End == nil {
		t.Errorf("root timing not exported: %+v", ex)
	}
	if got := ex.Children[0].Events[0].Attrs["mutual"]; got != 0.76 {
		t.Errorf("merge weight = %v", got)
	}

	// The JSON serialisation carries the weights verbatim.
	raw, err := json.Marshal(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"0.76"`, `"integrate"`, `"condense"`} {
		want = strings.Trim(want, `"`)
		if !strings.Contains(string(raw), want) {
			t.Errorf("JSON missing %q:\n%s", want, raw)
		}
	}
}

func TestUnfinishedSpanExports(t *testing.T) {
	o := New(WithClock(fakeClock()))
	s := o.StartSpan("open")
	ex := s.Export()
	if ex.End != nil || ex.DurationMS != 0 {
		t.Errorf("unfinished span exported an end: %+v", ex)
	}
	// Double End keeps the first end time.
	s.End()
	d1 := s.Duration()
	s.End()
	if s.Duration() != d1 {
		t.Error("second End moved the end time")
	}
}

func TestChromeTraceDepthAndInstants(t *testing.T) {
	o := New(WithClock(fakeClock()))
	root := o.StartSpan("run")
	child := root.StartChild("stage")
	child.Event("tick", Int("n", 3))
	child.End()
	root.End()

	evs := o.ChromeTrace()
	if len(evs) != 3 {
		t.Fatalf("chrome events = %d, want 3", len(evs))
	}
	byName := map[string]ChromeEvent{}
	for _, e := range evs {
		byName[e.Name] = e
	}
	if byName["run"].Phase != "X" || byName["run"].TID != 0 {
		t.Errorf("run event = %+v", byName["run"])
	}
	if byName["stage"].TID != 1 || byName["stage"].Dur <= 0 {
		t.Errorf("stage event = %+v", byName["stage"])
	}
	if byName["tick"].Phase != "i" || byName["tick"].Args["n"] != any(3) {
		t.Errorf("tick event = %+v", byName["tick"])
	}
	if byName["stage"].TS <= byName["run"].TS {
		t.Error("child timestamp not after parent")
	}
}

func TestWriteTraceRoundTrips(t *testing.T) {
	o := New(WithClock(fakeClock()))
	s := o.StartSpan("top")
	s.Event("e1")
	s.End()
	o.Metrics().Counter("widgets_total", "widgets").Add(5)

	var buf bytes.Buffer
	if err := o.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tr Trace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.Spans) != 1 || tr.Spans[0].Name != "top" {
		t.Errorf("spans = %+v", tr.Spans)
	}
	if len(tr.ChromeEvents) != 2 {
		t.Errorf("chrome events = %d", len(tr.ChromeEvents))
	}
	if len(tr.Metrics.Counters) != 1 || tr.Metrics.Counters[0].Value != 5 {
		t.Errorf("metrics = %+v", tr.Metrics)
	}
}

func TestContextPlumbing(t *testing.T) {
	// No observer: Start is a no-op.
	ctx, span := Start(context.Background(), "orphan")
	if span != nil {
		t.Fatal("span without observer")
	}
	if SpanFromContext(ctx) != nil {
		t.Fatal("ctx polluted")
	}

	o := New(WithClock(fakeClock()))
	ctx = NewContext(context.Background(), o)
	if FromContext(ctx) != o {
		t.Fatal("observer lost in ctx")
	}
	ctx, outer := Start(ctx, "outer")
	if outer == nil || SpanFromContext(ctx) != outer {
		t.Fatal("outer span not current")
	}
	_, inner := Start(ctx, "inner")
	inner.End()
	outer.End()
	kids := outer.Children()
	if len(kids) != 1 || kids[0].Name() != "inner" {
		t.Fatalf("nesting broken: %v", kids)
	}
}

func TestSlogMirroring(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	o := New(WithLogger(logger), WithClock(fakeClock()))
	if o.Logger() == nil {
		t.Fatal("logger not stored")
	}
	s := o.StartSpan("stage")
	s.Event("merge", String("a", "p1"), Float("mutual", 0.76))
	s.End()
	out := buf.String()
	for _, want := range []string{"span start", "span end", "merge", "mutual=0.76", "span=stage"} {
		if !strings.Contains(out, want) {
			t.Errorf("log missing %q:\n%s", want, out)
		}
	}
}

func TestConcurrentSpanUse(t *testing.T) {
	o := New()
	root := o.StartSpan("root")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			c := root.StartChild("worker")
			for j := 0; j < 50; j++ {
				c.Event("tick", Int("j", j))
			}
			c.End()
		}(i)
	}
	wg.Wait()
	root.End()
	if got := len(root.Children()); got != 8 {
		t.Errorf("children = %d", got)
	}
}
