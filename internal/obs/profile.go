package obs

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
)

// Profiler couples Go's pprof machinery to the telemetry subsystem: a
// whole-run CPU profile, a heap profile at shutdown, and — keyed to the
// span names the pipeline already emits — one CPU profile per stage, so a
// slow condense or map phase can be drilled into without re-instrumenting
// anything.
//
// The runtime supports a single active CPU profile, so the whole-run
// profile (cpuPath) and the per-stage profiles (dir) are mutually
// exclusive; NewProfiler rejects the combination. Like the rest of the
// package, a nil *Profiler absorbs every call.
type Profiler struct {
	cpuPath string
	memPath string
	dir     string

	mu      sync.Mutex
	cpuFile *os.File // whole-run CPU profile, open between Start and Stop
	stage   string   // stage owning the active per-stage profile ("" = none)
	stageF  *os.File
	counts  map[string]int // per-stage-name invocation counter for filenames
}

// NewProfiler validates the three profile destinations and returns a
// profiler, or (nil, nil) when all are empty — the uninstrumented fast
// path. cpuPath receives one CPU profile covering Start..Stop; memPath a
// heap profile written by Stop; dir one cpu-<stage>.pprof per pipeline
// stage. cpuPath and dir are mutually exclusive.
func NewProfiler(cpuPath, memPath, dir string) (*Profiler, error) {
	if cpuPath == "" && memPath == "" && dir == "" {
		return nil, nil
	}
	if cpuPath != "" && dir != "" {
		return nil, errors.New("obs: whole-run CPU profile and per-stage profile dir are mutually exclusive (one CPU profile can be active at a time)")
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("obs: profile dir: %w", err)
		}
	}
	return &Profiler{cpuPath: cpuPath, memPath: memPath, dir: dir, counts: map[string]int{}}, nil
}

// Start begins the whole-run CPU profile, when one was requested.
func (p *Profiler) Start() error {
	if p == nil || p.cpuPath == "" {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cpuFile != nil {
		return nil
	}
	f, err := os.Create(p.cpuPath)
	if err != nil {
		return fmt.Errorf("obs: cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: cpu profile: %w", err)
	}
	p.cpuFile = f
	return nil
}

// StageStart begins a per-stage CPU profile named after the stage (span)
// name, when a profile dir was configured. Repeated stages get a numeric
// suffix (cpu-condense.pprof, cpu-condense-2.pprof, …). While one stage's
// profile is active further StageStart calls are ignored — the runtime
// supports one CPU profile at a time, and pipeline stages don't nest.
func (p *Profiler) StageStart(name string) {
	if p == nil || p.dir == "" || name == "" {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stage != "" {
		return
	}
	p.counts[name]++
	file := "cpu-" + sanitizeStage(name)
	if n := p.counts[name]; n > 1 {
		file += fmt.Sprintf("-%d", n)
	}
	f, err := os.Create(filepath.Join(p.dir, file+".pprof"))
	if err != nil {
		return
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return
	}
	p.stage = name
	p.stageF = f
}

// StageEnd closes the per-stage profile opened by the matching StageStart.
// Calls for stages that don't own the active profile are ignored.
func (p *Profiler) StageEnd(name string) {
	if p == nil || p.dir == "" {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stage != name || p.stageF == nil {
		return
	}
	pprof.StopCPUProfile()
	p.stageF.Close()
	p.stage = ""
	p.stageF = nil
}

// Stop ends the whole-run CPU profile and writes the heap profile (after a
// GC, so the numbers reflect live memory, not garbage). Safe to call
// without Start and safe to call twice.
func (p *Profiler) Stop() error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := p.cpuFile.Close(); err != nil {
			return err
		}
		p.cpuFile = nil
	}
	if p.memPath != "" {
		f, err := os.Create(p.memPath)
		if err != nil {
			return fmt.Errorf("obs: heap profile: %w", err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("obs: heap profile: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		p.memPath = ""
	}
	return nil
}

// sanitizeStage maps a span name onto a filesystem-safe filename fragment.
func sanitizeStage(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, name)
}
