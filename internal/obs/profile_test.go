package obs

import (
	"os"
	"path/filepath"
	"testing"
)

func TestNilProfilerAbsorbsEverything(t *testing.T) {
	var p *Profiler
	if err := p.Start(); err != nil {
		t.Fatalf("nil Start: %v", err)
	}
	p.StageStart("condense")
	p.StageEnd("condense")
	if err := p.Stop(); err != nil {
		t.Fatalf("nil Stop: %v", err)
	}
}

func TestNewProfilerAllEmptyIsNil(t *testing.T) {
	p, err := NewProfiler("", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if p != nil {
		t.Fatalf("expected nil profiler for empty config, got %v", p)
	}
}

func TestNewProfilerRejectsCPUPlusDir(t *testing.T) {
	if _, err := NewProfiler("cpu.pprof", "", t.TempDir()); err == nil {
		t.Fatal("expected error for -cpuprofile together with -profile-dir")
	}
}

func TestWholeRunCPUAndHeapProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	p, err := NewProfiler(cpu, mem, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	busyWork()
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile %s not written: %v", path, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", path)
		}
	}
	// Stop is idempotent.
	if err := p.Stop(); err != nil {
		t.Fatalf("second Stop: %v", err)
	}
}

func TestPerStageProfiles(t *testing.T) {
	dir := t.TempDir()
	p, err := NewProfiler("", "", dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil { // no whole-run profile requested: no-op
		t.Fatal(err)
	}

	p.StageStart("condense")
	busyWork()
	p.StageEnd("condense")

	// A nested StageStart while another stage owns the profile is ignored,
	// and its StageEnd must not close the active profile.
	p.StageStart("map")
	p.StageStart("refine/inner") // ignored
	p.StageEnd("refine/inner")   // ignored
	busyWork()
	p.StageEnd("map")

	// A repeated stage gets a counter suffix instead of clobbering.
	p.StageStart("condense")
	busyWork()
	p.StageEnd("condense")

	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}

	want := []string{"cpu-condense.pprof", "cpu-map.pprof", "cpu-condense-2.pprof"}
	for _, name := range want {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("stage profile %s not written: %v", name, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("stage profile %s is empty", name)
		}
	}
	// The ignored nested stage must not have produced a file.
	if _, err := os.Stat(filepath.Join(dir, "cpu-refine_inner.pprof")); err == nil {
		t.Fatal("nested stage profile should not exist")
	}
}

func TestObserverProfilerAccessors(t *testing.T) {
	var nilObs *Observer
	if nilObs.Profiler() != nil {
		t.Fatal("nil observer should hand out a nil profiler")
	}
	var nilSpan *Span
	if nilSpan.Profiler() != nil {
		t.Fatal("nil span should hand out a nil profiler")
	}

	p, err := NewProfiler("", "", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	o := New(WithProfiler(p))
	if o.Profiler() != p {
		t.Fatal("observer lost its profiler")
	}
	sp := o.StartSpan("root")
	defer sp.End()
	if sp.Profiler() != p {
		t.Fatal("span should reach the observer's profiler")
	}
}

// busyWork burns a little CPU so profiles have something to record.
func busyWork() {
	x := 0.0
	for i := 0; i < 1_000_000; i++ {
		x += float64(i%7) * 1.000001
	}
	if x < 0 {
		panic("unreachable")
	}
}
