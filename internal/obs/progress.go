package obs

import (
	"sort"
	"sync"
	"time"
)

// pipelineStages are the Integrate stage spans, in execution order; the
// tracker recognises them by name when span events are mirrored onto the
// bus.
var pipelineStages = []string{"partition", "influence", "replicate", "condense", "map", "evaluate"}

// StageProgress is the live state of one Integrate pipeline stage.
type StageProgress struct {
	Name string `json:"name"`
	// State is "pending", "running" or "done".
	State string `json:"state"`
	// Attempts counts how many times the stage has started (fallback
	// chains and races restart condense/map/evaluate).
	Attempts   int     `json:"attempts,omitempty"`
	DurationMS float64 `json:"duration_ms,omitempty"`
}

// CampaignProgress is the live state of one fault-injection campaign as
// reconstructed from campaign_start/checkpoint/done events.
type CampaignProgress struct {
	Label       string  `json:"label"`
	Model       string  `json:"model,omitempty"`
	Workers     int     `json:"workers,omitempty"`
	TrialsDone  int     `json:"trials_done"`
	TrialsTotal int     `json:"trials_total"`
	EscapeRate  float64 `json:"escape_rate"`
	// HalfWidth is the latest Wald CI half-width of the escape-rate
	// estimate; the trails record its trajectory for convergence plots.
	HalfWidth       float64   `json:"half_width,omitempty"`
	TrailTrials     []int     `json:"trail_trials,omitempty"`
	TrailHalfWidth  []float64 `json:"trail_half_width,omitempty"`
	TrialsPerSec    float64   `json:"trials_per_sec,omitempty"`
	EtaSeconds      float64   `json:"eta_seconds,omitempty"`
	EarlyStopped    bool      `json:"early_stopped,omitempty"`
	Done            bool      `json:"done"`
	startTMS        float64
	lastTMS         float64
	startTrialsDone int // resume offset: trials completed before this run
}

// SearchProgress is the live state of an adversarial search.
type SearchProgress struct {
	Evaluations int     `json:"evaluations"`
	BestScore   float64 `json:"best_score"`
	Scenario    string  `json:"scenario,omitempty"`
	Done        bool    `json:"done"`
}

// CertifyProgress is the live state of a robustness certification.
type CertifyProgress struct {
	Members       int     `json:"members"`
	Levels        int     `json:"levels"`
	Epsilon       float64 `json:"epsilon"`
	StableFrac    float64 `json:"stable_frac"`
	WorstUnstable float64 `json:"worst_unstable_epsilon,omitempty"`
	Done          bool    `json:"done"`
}

// FabricWorkerProgress is the live state of one distributed-campaign
// worker as seen by the coordinator.
type FabricWorkerProgress struct {
	Name string `json:"name"`
	// State is the last liveness transition: join, lost, drain, done (or
	// the worker-side connected/retry/drained when tracking a worker
	// process's own bus).
	State      string `json:"state"`
	Leases     int    `json:"leases"`
	ChunksDone int    `json:"chunks_done"`
	// Chunk-latency quantiles (leased→resulted on the coordinator clock),
	// folded from the latency_ms attribute of fabric_lease result events
	// and computed at Snapshot time over a bounded recent window.
	LatencyP50MS float64 `json:"latency_p50_ms,omitempty"`
	LatencyP95MS float64 `json:"latency_p95_ms,omitempty"`
	// Clock-offset estimate relative to the coordinator (µs, RTT-midpoint
	// method) and the RTT of the sample it came from, from fabric_clock.
	ClockOffsetUS float64 `json:"clock_offset_us,omitempty"`
	RTTUS         float64 `json:"rtt_us,omitempty"`
	// Straggler marks a worker flagged by the coordinator's straggler
	// detector (fabric_straggler); sticky for the connection's lifetime.
	Straggler bool `json:"straggler,omitempty"`

	lat    []float64 // latency ring (workerLatCap)
	latPos int
}

// workerLatCap bounds each worker row's latency window.
const workerLatCap = 64

// FabricProgress is the live state of the distributed campaign fabric,
// folded from fabric_worker/fabric_lease/fabric_quarantine/fabric_done
// events.
type FabricProgress struct {
	Label         string                 `json:"label,omitempty"`
	Workers       []FabricWorkerProgress `json:"workers,omitempty"`
	LeasesGranted int                    `json:"leases_granted"`
	LeasesExpired int                    `json:"leases_expired,omitempty"`
	Reassigned    int                    `json:"reassigned,omitempty"`
	Duplicates    int                    `json:"duplicates,omitempty"`
	// Quarantined counts workers dropped for failing a spot-check;
	// LocalChunks counts chunks the coordinator computed itself after the
	// live worker set emptied.
	Quarantined int  `json:"quarantined,omitempty"`
	LocalChunks int  `json:"local_chunks,omitempty"`
	Done        bool `json:"done"`
	byName      map[string]*FabricWorkerProgress
}

// ProgressSnapshot is the /progress JSON document: everything the bus has
// revealed about the run so far, summarised for an operator.
type ProgressSnapshot struct {
	// Run identifies the current Integrate invocation.
	Run       string             `json:"run,omitempty"`
	Stages    []StageProgress    `json:"stages,omitempty"`
	Campaigns []CampaignProgress `json:"campaigns,omitempty"`
	Search    *SearchProgress    `json:"search,omitempty"`
	Certify   *CertifyProgress   `json:"certify,omitempty"`
	Fabric    *FabricProgress    `json:"fabric,omitempty"`
	// Events/Seq/DroppedEvents describe the bus itself.
	Events        uint64 `json:"events"`
	Seq           uint64 `json:"seq"`
	DroppedEvents uint64 `json:"dropped_events"`
	// UptimeSeconds is the time since the tracker saw its first event.
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// halfWidthTrailCap bounds each campaign's CI-convergence trail.
const halfWidthTrailCap = 240

// Tracker folds the bus's event stream into live progress state — the
// trials/sec throughput, completed-trial frontier, Wald CI half-width
// trajectory and ETA of every campaign, plus per-stage Integrate
// progress. It attaches to the bus as a synchronous sink; Apply is O(1)
// and never blocks, so publishing stays non-blocking end to end.
type Tracker struct {
	mu        sync.Mutex
	bus       *Bus
	run       string
	stages    []*StageProgress
	campaigns []*CampaignProgress
	byLabel   map[string]*CampaignProgress
	search    *SearchProgress
	certify   *CertifyProgress
	fabric    *FabricProgress
	events    uint64
	firstSeen time.Time
	now       func() time.Time
}

// NewTracker builds a tracker and attaches it to the bus (a nil bus
// yields a detached tracker that only ever reports an empty snapshot).
func NewTracker(b *Bus) *Tracker {
	t := &Tracker{bus: b, byLabel: map[string]*CampaignProgress{}, now: time.Now}
	b.Attach(t.Apply)
	return t
}

// Apply folds one event into the progress state.
func (t *Tracker) Apply(ev BusEvent) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events++
	if t.firstSeen.IsZero() {
		t.firstSeen = t.now()
	}
	switch ev.Kind {
	case "span_start":
		switch ev.Name {
		case "integrate":
			// A fresh pipeline run: reset the stage board.
			if sys, ok := ev.Attrs["system"].(string); ok {
				t.run = sys
			}
			t.stages = t.stages[:0]
			for _, name := range pipelineStages {
				t.stages = append(t.stages, &StageProgress{Name: name, State: "pending"})
			}
		default:
			if sp := t.stage(ev.Name); sp != nil {
				sp.State = "running"
				sp.Attempts++
			}
		}
	case "span_end":
		if sp := t.stage(ev.Name); sp != nil {
			sp.State = "done"
			if d, ok := toFloat(ev.Attrs["duration_ms"]); ok {
				sp.DurationMS = d
			}
		}
	case "campaign_start":
		c := t.campaign(ev.Name)
		*c = CampaignProgress{Label: ev.Name, startTMS: ev.TMS, lastTMS: ev.TMS}
		if v, ok := toInt(ev.Attrs["trials_total"]); ok {
			c.TrialsTotal = v
		}
		if v, ok := toInt(ev.Attrs["trials_done"]); ok {
			c.TrialsDone = v
			c.startTrialsDone = v
		}
		if v, ok := ev.Attrs["model"].(string); ok {
			c.Model = v
		}
		if v, ok := toInt(ev.Attrs["workers"]); ok {
			c.Workers = v
		}
	case "campaign_checkpoint":
		c := t.campaign(ev.Name)
		c.lastTMS = ev.TMS
		if v, ok := toInt(ev.Attrs["trials_done"]); ok {
			c.TrialsDone = v
		}
		if v, ok := toInt(ev.Attrs["trials_total"]); ok {
			c.TrialsTotal = v
		}
		if v, ok := toFloat(ev.Attrs["escape_rate"]); ok {
			c.EscapeRate = v
		}
		if v, ok := toFloat(ev.Attrs["half_width"]); ok {
			c.HalfWidth = v
			if len(c.TrailTrials) < halfWidthTrailCap {
				c.TrailTrials = append(c.TrailTrials, c.TrialsDone)
				c.TrailHalfWidth = append(c.TrailHalfWidth, v)
			}
		}
	case "campaign_done":
		c := t.campaign(ev.Name)
		c.lastTMS = ev.TMS
		c.Done = true
		if v, ok := toInt(ev.Attrs["trials_done"]); ok {
			c.TrialsDone = v
		}
		if v, ok := toFloat(ev.Attrs["escape_rate"]); ok {
			c.EscapeRate = v
		}
		if v, ok := ev.Attrs["early_stopped"].(bool); ok {
			c.EarlyStopped = v
		}
	case "search_eval":
		if t.search == nil {
			t.search = &SearchProgress{}
		}
		t.search.Evaluations++
		if v, ok := toFloat(ev.Attrs["score"]); ok && v > t.search.BestScore {
			t.search.BestScore = v
			if sc, ok := ev.Attrs["scenario"].(string); ok {
				t.search.Scenario = sc
			}
		}
	case "search_done":
		if t.search == nil {
			t.search = &SearchProgress{}
		}
		t.search.Done = true
		if v, ok := toInt(ev.Attrs["evaluations"]); ok {
			t.search.Evaluations = v
		}
		if v, ok := toFloat(ev.Attrs["score"]); ok {
			t.search.BestScore = v
		}
		if sc, ok := ev.Attrs["scenario"].(string); ok {
			t.search.Scenario = sc
		}
	case "certify_member":
		if t.certify == nil {
			t.certify = &CertifyProgress{}
		}
		t.certify.Members++
		if v, ok := toFloat(ev.Attrs["epsilon"]); ok {
			t.certify.Epsilon = v
		}
	case "certify_level":
		if t.certify == nil {
			t.certify = &CertifyProgress{}
		}
		t.certify.Levels++
		if v, ok := toFloat(ev.Attrs["epsilon"]); ok {
			t.certify.Epsilon = v
		}
		if v, ok := toFloat(ev.Attrs["stable_frac"]); ok {
			t.certify.StableFrac = v
			if v < 1 && t.certify.WorstUnstable == 0 {
				t.certify.WorstUnstable = t.certify.Epsilon
			}
		}
	case "certify_done":
		if t.certify == nil {
			t.certify = &CertifyProgress{}
		}
		t.certify.Done = true
	case "fabric_worker":
		f := t.fabricState()
		if label, ok := ev.Attrs["campaign"].(string); ok && f.Label == "" {
			f.Label = label
		}
		w := f.worker(ev.Name)
		if s, ok := ev.Attrs["state"].(string); ok {
			w.State = s
		}
		if v, ok := toInt(ev.Attrs["leases"]); ok {
			w.Leases = v
		}
		if v, ok := toInt(ev.Attrs["chunks_done"]); ok {
			w.ChunksDone = v
		}
	case "fabric_lease":
		f := t.fabricState()
		if f.Label == "" {
			f.Label = ev.Name
		}
		switch ev.Attrs["state"] {
		case "grant":
			f.LeasesGranted++
		case "result":
			// Latency attribution: fold the delivering worker's
			// leased→resulted time into its bounded ring (O(1); the
			// quantiles are computed at Snapshot time).
			if name, ok := ev.Attrs["worker"].(string); ok && name != "" {
				if ms, ok := toFloat(ev.Attrs["latency_ms"]); ok {
					w := f.worker(name)
					if len(w.lat) < workerLatCap {
						w.lat = append(w.lat, ms)
					} else {
						w.lat[w.latPos%workerLatCap] = ms
					}
					w.latPos++
				}
			}
		case "expire":
			f.LeasesExpired++
		case "reassign":
			f.Reassigned++
		case "duplicate":
			f.Duplicates++
		}
	case "fabric_clock":
		f := t.fabricState()
		if label, ok := ev.Attrs["campaign"].(string); ok && f.Label == "" {
			f.Label = label
		}
		w := f.worker(ev.Name)
		if v, ok := toFloat(ev.Attrs["offset_us"]); ok {
			w.ClockOffsetUS = v
		}
		if v, ok := toFloat(ev.Attrs["rtt_us"]); ok {
			w.RTTUS = v
		}
		if v, ok := toInt(ev.Attrs["chunks_done"]); ok && v > w.ChunksDone {
			w.ChunksDone = v // relayed worker meter; monotone fold
		}
	case "fabric_straggler":
		f := t.fabricState()
		if label, ok := ev.Attrs["campaign"].(string); ok && f.Label == "" {
			f.Label = label
		}
		f.worker(ev.Name).Straggler = true
	case "fabric_quarantine":
		f := t.fabricState()
		if label, ok := ev.Attrs["campaign"].(string); ok && f.Label == "" {
			f.Label = label
		}
		f.Quarantined++
		f.worker(ev.Name).State = "quarantined"
	case "fabric_done":
		f := t.fabricState()
		if f.Label == "" {
			f.Label = ev.Name
		}
		f.Done = true
		// The terminal summary is authoritative; overwrite the folded
		// counters in case lease events were dropped under load.
		if v, ok := toInt(ev.Attrs["leases_granted"]); ok {
			f.LeasesGranted = v
		}
		if v, ok := toInt(ev.Attrs["leases_expired"]); ok {
			f.LeasesExpired = v
		}
		if v, ok := toInt(ev.Attrs["reassigned"]); ok {
			f.Reassigned = v
		}
		if v, ok := toInt(ev.Attrs["duplicates"]); ok {
			f.Duplicates = v
		}
		if v, ok := toInt(ev.Attrs["quarantined"]); ok {
			f.Quarantined = v
		}
		if v, ok := toInt(ev.Attrs["local_chunks"]); ok {
			f.LocalChunks = v
		}
	}
}

// fabricState finds or creates the fabric board. Caller holds t.mu.
func (t *Tracker) fabricState() *FabricProgress {
	if t.fabric == nil {
		t.fabric = &FabricProgress{byName: map[string]*FabricWorkerProgress{}}
	}
	return t.fabric
}

// worker finds or creates a fabric worker row by name.
func (f *FabricProgress) worker(name string) *FabricWorkerProgress {
	if w, ok := f.byName[name]; ok {
		return w
	}
	f.Workers = append(f.Workers, FabricWorkerProgress{Name: name})
	w := &f.Workers[len(f.Workers)-1]
	f.byName[name] = w
	// Appends can move the backing array; rebuild the index so every
	// pointer targets the current slice.
	for i := range f.Workers {
		f.byName[f.Workers[i].Name] = &f.Workers[i]
	}
	return f.byName[name]
}

// stage finds a stage row by name (nil when it is not a pipeline stage).
// Caller holds t.mu.
func (t *Tracker) stage(name string) *StageProgress {
	for _, sp := range t.stages {
		if sp.Name == name {
			return sp
		}
	}
	return nil
}

// campaign finds or creates a campaign row by label. Caller holds t.mu.
func (t *Tracker) campaign(label string) *CampaignProgress {
	if c, ok := t.byLabel[label]; ok {
		return c
	}
	c := &CampaignProgress{Label: label}
	t.byLabel[label] = c
	t.campaigns = append(t.campaigns, c)
	return c
}

// Snapshot returns a deep copy of the progress state with the derived
// rates filled in: trials/sec over the campaign's own event-timestamp
// window, and the ETA extrapolated from it.
func (t *Tracker) Snapshot() ProgressSnapshot {
	var snap ProgressSnapshot
	if t == nil {
		return snap
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	snap.Run = t.run
	for _, sp := range t.stages {
		snap.Stages = append(snap.Stages, *sp)
	}
	for _, c := range t.campaigns {
		cp := *c
		cp.TrailTrials = append([]int(nil), c.TrailTrials...)
		cp.TrailHalfWidth = append([]float64(nil), c.TrailHalfWidth...)
		if dt := (c.lastTMS - c.startTMS) / 1000; dt > 0 && c.TrialsDone > c.startTrialsDone {
			cp.TrialsPerSec = float64(c.TrialsDone-c.startTrialsDone) / dt
			if !c.Done && cp.TrialsPerSec > 0 && c.TrialsTotal > c.TrialsDone {
				cp.EtaSeconds = float64(c.TrialsTotal-c.TrialsDone) / cp.TrialsPerSec
			}
		}
		snap.Campaigns = append(snap.Campaigns, cp)
	}
	if t.search != nil {
		s := *t.search
		snap.Search = &s
	}
	if t.certify != nil {
		c := *t.certify
		snap.Certify = &c
	}
	if t.fabric != nil {
		f := *t.fabric
		f.Workers = append([]FabricWorkerProgress(nil), t.fabric.Workers...)
		f.byName = nil
		for i := range f.Workers {
			w := &f.Workers[i]
			if len(w.lat) > 0 {
				w.LatencyP50MS = latQuantile(w.lat, 50)
				w.LatencyP95MS = latQuantile(w.lat, 95)
			}
			w.lat, w.latPos = nil, 0 // quantiles rendered; drop the window
		}
		snap.Fabric = &f
	}
	snap.Events = t.events
	snap.Seq = t.bus.Seq()
	snap.DroppedEvents = t.bus.Dropped()
	if !t.firstSeen.IsZero() {
		snap.UptimeSeconds = t.now().Sub(t.firstSeen).Seconds()
	}
	return snap
}

// latQuantile is the nearest-rank q-th percentile of a latency window.
func latQuantile(lat []float64, q int) float64 {
	s := append([]float64(nil), lat...)
	sort.Float64s(s)
	idx := (len(s)*q+99)/100 - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// toInt coerces the numeric types Attr values carry in practice.
func toInt(v any) (int, bool) {
	switch n := v.(type) {
	case int:
		return n, true
	case int64:
		return int(n), true
	case float64:
		return int(n), true
	}
	return 0, false
}

func toFloat(v any) (float64, bool) {
	switch n := v.(type) {
	case float64:
		return n, true
	case int:
		return float64(n), true
	case int64:
		return float64(n), true
	}
	return 0, false
}
