package obs

import (
	"testing"
	"time"
)

// synthetic event helper: timestamps are milliseconds on the bus clock.
func evAt(tms float64, kind, name string, attrs ...Attr) BusEvent {
	return BusEvent{TMS: tms, Kind: kind, Name: name, Attrs: attrsMap(attrs)}
}

func TestTrackerStageBoard(t *testing.T) {
	tr := NewTracker(nil)
	tr.Apply(evAt(0, "span_start", "integrate", String("system", "paper-example")))
	tr.Apply(evAt(1, "span_start", "partition"))
	tr.Apply(evAt(5, "span_end", "partition", Float("duration_ms", 4)))
	tr.Apply(evAt(6, "span_start", "condense"))

	snap := tr.Snapshot()
	if snap.Run != "paper-example" {
		t.Errorf("run = %q, want paper-example", snap.Run)
	}
	if len(snap.Stages) != len(pipelineStages) {
		t.Fatalf("got %d stages, want %d", len(snap.Stages), len(pipelineStages))
	}
	byName := map[string]StageProgress{}
	for _, sp := range snap.Stages {
		byName[sp.Name] = sp
	}
	if sp := byName["partition"]; sp.State != "done" || sp.DurationMS != 4 || sp.Attempts != 1 {
		t.Errorf("partition = %+v, want done/4ms/1 attempt", sp)
	}
	if sp := byName["condense"]; sp.State != "running" {
		t.Errorf("condense = %+v, want running", sp)
	}
	if sp := byName["evaluate"]; sp.State != "pending" {
		t.Errorf("evaluate = %+v, want pending", sp)
	}

	// A retried stage counts attempts.
	tr.Apply(evAt(7, "span_end", "condense", Float("duration_ms", 1)))
	tr.Apply(evAt(8, "span_start", "condense"))
	if sp := findStage(tr.Snapshot(), "condense"); sp.Attempts != 2 || sp.State != "running" {
		t.Errorf("retried condense = %+v, want 2 attempts running", sp)
	}
}

func findStage(snap ProgressSnapshot, name string) StageProgress {
	for _, sp := range snap.Stages {
		if sp.Name == name {
			return sp
		}
	}
	return StageProgress{}
}

func TestTrackerCampaignRateAndETA(t *testing.T) {
	tr := NewTracker(nil)
	tr.Apply(evAt(1000, "campaign_start", "c",
		Int("trials_total", 10000), Int("trials_done", 0),
		String("model", "crash"), Int("workers", 4)))
	tr.Apply(evAt(3000, "campaign_checkpoint", "c",
		Int("trials_done", 4000), Int("trials_total", 10000),
		Float("escape_rate", 0.05), Float("half_width", 0.02)))

	snap := tr.Snapshot()
	if len(snap.Campaigns) != 1 {
		t.Fatalf("got %d campaigns", len(snap.Campaigns))
	}
	c := snap.Campaigns[0]
	if c.Model != "crash" || c.Workers != 4 || c.TrialsTotal != 10000 {
		t.Errorf("campaign identity = %+v", c)
	}
	// 4000 trials over the 2-second event window.
	if c.TrialsPerSec != 2000 {
		t.Errorf("trials/sec = %g, want 2000", c.TrialsPerSec)
	}
	// 6000 remaining at 2000/s.
	if c.EtaSeconds != 3 {
		t.Errorf("eta = %g, want 3", c.EtaSeconds)
	}
	if len(c.TrailTrials) != 1 || c.TrailTrials[0] != 4000 || c.TrailHalfWidth[0] != 0.02 {
		t.Errorf("trail = %v / %v", c.TrailTrials, c.TrailHalfWidth)
	}

	tr.Apply(evAt(4000, "campaign_done", "c",
		Int("trials_done", 6000), Float("escape_rate", 0.051), Bool("early_stopped", true)))
	c = tr.Snapshot().Campaigns[0]
	if !c.Done || !c.EarlyStopped || c.TrialsDone != 6000 {
		t.Errorf("finished campaign = %+v", c)
	}
	if c.EtaSeconds != 0 {
		t.Errorf("finished campaign still has ETA %g", c.EtaSeconds)
	}
}

// TestTrackerCampaignResume: a campaign resumed from a checkpoint must
// compute throughput from the trials completed in *this* run.
func TestTrackerCampaignResume(t *testing.T) {
	tr := NewTracker(nil)
	tr.Apply(evAt(0, "campaign_start", "c",
		Int("trials_total", 10000), Int("trials_done", 8000)))
	tr.Apply(evAt(1000, "campaign_checkpoint", "c", Int("trials_done", 9000)))
	c := tr.Snapshot().Campaigns[0]
	if c.TrialsPerSec != 1000 {
		t.Errorf("resumed trials/sec = %g, want 1000 (this run's 1000 trials over 1s)", c.TrialsPerSec)
	}
}

func TestTrackerSearchAndCertify(t *testing.T) {
	tr := NewTracker(nil)
	tr.Apply(evAt(0, "search_eval", "search", String("scenario", "a"), Float("score", 0.3)))
	tr.Apply(evAt(1, "search_eval", "search", String("scenario", "b"), Float("score", 0.8)))
	tr.Apply(evAt(2, "search_eval", "search", String("scenario", "c"), Float("score", 0.5)))
	snap := tr.Snapshot()
	if snap.Search == nil || snap.Search.Evaluations != 3 ||
		snap.Search.BestScore != 0.8 || snap.Search.Scenario != "b" {
		t.Errorf("search progress = %+v", snap.Search)
	}
	tr.Apply(evAt(3, "search_done", "search",
		String("scenario", "b"), Float("score", 0.8), Int("evaluations", 3)))
	if s := tr.Snapshot().Search; !s.Done || s.Evaluations != 3 {
		t.Errorf("search done = %+v", s)
	}

	tr.Apply(evAt(4, "certify_member", "certify", Float("epsilon", 0.1), Int("sample", 0)))
	tr.Apply(evAt(5, "certify_member", "certify", Float("epsilon", 0.1), Int("sample", 1)))
	tr.Apply(evAt(6, "certify_level", "certify", Float("epsilon", 0.1), Float("stable_frac", 1)))
	tr.Apply(evAt(7, "certify_level", "certify", Float("epsilon", 0.3), Float("stable_frac", 0.5)))
	tr.Apply(evAt(8, "certify_done", "certify", Int("levels", 2)))
	c := tr.Snapshot().Certify
	if c == nil || c.Members != 2 || c.Levels != 2 || !c.Done {
		t.Fatalf("certify progress = %+v", c)
	}
	if c.StableFrac != 0.5 || c.WorstUnstable != 0.3 {
		t.Errorf("certify stability = %+v, want stable_frac 0.5 worst_unstable 0.3", c)
	}
}

func TestTrackerNilSafety(t *testing.T) {
	var tr *Tracker
	tr.Apply(BusEvent{Kind: "event"})
	if snap := tr.Snapshot(); snap.Events != 0 || snap.Campaigns != nil {
		t.Errorf("nil tracker snapshot = %+v", snap)
	}
	// A tracker on a nil bus still folds events fed directly to Apply.
	tr2 := NewTracker(nil)
	tr2.Apply(evAt(0, "campaign_start", "c", Int("trials_total", 10)))
	if snap := tr2.Snapshot(); len(snap.Campaigns) != 1 || snap.Seq != 0 {
		t.Errorf("nil-bus tracker snapshot = %+v", snap)
	}
}

func TestTrackerUptime(t *testing.T) {
	base := time.Unix(100, 0)
	clock := base
	tr := NewTracker(nil)
	tr.now = func() time.Time { return clock }
	tr.Apply(evAt(0, "event", "x"))
	clock = base.Add(90 * time.Second)
	if got := tr.Snapshot().UptimeSeconds; got != 90 {
		t.Errorf("uptime = %g, want 90", got)
	}
}

func TestTrackerAttachesToBus(t *testing.T) {
	bus := NewBus(16)
	tr := NewTracker(bus)
	bus.Publish("campaign_start", "c", Int("trials_total", 5))
	snap := tr.Snapshot()
	if len(snap.Campaigns) != 1 || snap.Campaigns[0].TrialsTotal != 5 {
		t.Fatalf("tracker missed bus event: %+v", snap.Campaigns)
	}
	if snap.Seq != 1 || snap.Events != 1 {
		t.Errorf("snapshot seq/events = %d/%d, want 1/1", snap.Seq, snap.Events)
	}
}

func TestTrackerFabricBoard(t *testing.T) {
	tr := NewTracker(nil)
	tr.Apply(evAt(0, "fabric_worker", "w1",
		String("state", "join"), String("campaign", "camp"), Int("leases", 2)))
	tr.Apply(evAt(1, "fabric_lease", "camp", String("state", "grant")))
	tr.Apply(evAt(2, "fabric_lease", "camp", String("state", "grant")))
	tr.Apply(evAt(3, "fabric_lease", "camp", String("state", "expire")))
	tr.Apply(evAt(4, "fabric_lease", "camp", String("state", "reassign")))
	tr.Apply(evAt(5, "fabric_worker", "w2", String("state", "join"), Int("leases", 1)))
	tr.Apply(evAt(6, "fabric_worker", "w1",
		String("state", "done"), Int("leases", 0), Int("chunks_done", 7)))

	snap := tr.Snapshot()
	f := snap.Fabric
	if f == nil {
		t.Fatal("no fabric board after fabric events")
	}
	if f.Label != "camp" {
		t.Errorf("Label = %q, want camp", f.Label)
	}
	if f.LeasesGranted != 2 || f.LeasesExpired != 1 || f.Reassigned != 1 {
		t.Errorf("counters = %+v, want 2 granted / 1 expired / 1 reassigned", f)
	}
	if len(f.Workers) != 2 {
		t.Fatalf("Workers = %d, want 2", len(f.Workers))
	}
	if w := f.Workers[0]; w.Name != "w1" || w.State != "done" || w.Leases != 0 || w.ChunksDone != 7 {
		t.Errorf("w1 row = %+v", w)
	}
	if f.Done {
		t.Error("fabric done before fabric_done event")
	}

	// The terminal summary is authoritative: it overwrites the folded
	// counters (some lease events may have been dropped under load).
	tr.Apply(evAt(7, "fabric_done", "camp",
		Int("leases_granted", 9), Int("leases_expired", 3),
		Int("reassigned", 2), Int("duplicates", 1)))
	f = tr.Snapshot().Fabric
	if !f.Done || f.LeasesGranted != 9 || f.LeasesExpired != 3 || f.Reassigned != 2 || f.Duplicates != 1 {
		t.Errorf("after fabric_done: %+v", f)
	}

	// Snapshot isolation: mutating the tracker afterwards must not reach
	// an already-taken snapshot.
	tr.Apply(evAt(8, "fabric_worker", "w3", String("state", "join")))
	if len(f.Workers) != 2 {
		t.Error("snapshot shares worker slice with live tracker")
	}
}
