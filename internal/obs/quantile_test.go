package obs

import (
	"math"
	"testing"
)

func TestQuantileUniform(t *testing.T) {
	// 10k samples uniform on (0, 100] against decade-spaced buckets: the
	// interpolated quantile must land within one bucket's resolution.
	r := NewRegistry()
	bounds := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	h := r.Histogram("u", "", bounds)
	for i := 0; i < 10000; i++ {
		h.Observe(float64(i%10000) / 100.0000001) // (0, 100)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.5, 50}, {0.95, 95}, {0.99, 99}, {0.25, 25},
	} {
		got := h.Quantile(tc.q)
		if math.Abs(got-tc.want) > 1 {
			t.Errorf("Quantile(%g) = %g, want %g ± 1", tc.q, got, tc.want)
		}
	}
}

func TestQuantileExponentialish(t *testing.T) {
	// A point mass distribution with known exact quantiles: 900 samples at
	// 0.5 (bucket (0,1]), 90 at 5 (bucket (1,10]), 10 at 50 (bucket
	// (10,100]). Ranks: p50 falls in the first bucket, p95 in the second,
	// p99.5 in the third.
	r := NewRegistry()
	h := r.Histogram("e", "", []float64{1, 10, 100})
	for i := 0; i < 900; i++ {
		h.Observe(0.5)
	}
	for i := 0; i < 90; i++ {
		h.Observe(5)
	}
	for i := 0; i < 10; i++ {
		h.Observe(50)
	}
	// p50: rank 500 of 900 in (0,1] → 0 + 1*(500/900) ≈ 0.556.
	if got, want := h.Quantile(0.50), 500.0/900; math.Abs(got-want) > 1e-9 {
		t.Errorf("p50 = %g, want %g", got, want)
	}
	// p95: rank 950; 900 below, 50 of 90 into (1,10] → 1 + 9*(50/90) = 6.
	if got := h.Quantile(0.95); math.Abs(got-6) > 1e-9 {
		t.Errorf("p95 = %g, want 6", got)
	}
	// p99.5: rank 995; 5 of 10 into (10,100] → 10 + 90*0.5 = 55.
	if got := h.Quantile(0.995); math.Abs(got-55) > 1e-9 {
		t.Errorf("p99.5 = %g, want 55", got)
	}
}

func TestQuantileOverflowClampsToHighestBound(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("o", "", []float64{1, 2})
	for i := 0; i < 100; i++ {
		h.Observe(1000) // all in +Inf
	}
	if got := h.Quantile(0.5); got != 2 {
		t.Errorf("overflow Quantile(0.5) = %g, want 2 (highest finite bound)", got)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var nilH *Histogram
	if !math.IsNaN(nilH.Quantile(0.5)) {
		t.Error("nil histogram Quantile not NaN")
	}
	r := NewRegistry()
	h := r.Histogram("empty", "", DefBuckets)
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("empty histogram Quantile not NaN")
	}
	h.Observe(0.3)
	for _, q := range []float64{0, 1, -0.5, 1.5, math.NaN()} {
		if !math.IsNaN(h.Quantile(q)) {
			t.Errorf("Quantile(%g) not NaN", q)
		}
	}
}

func TestSnapshotQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("s", "", []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) / 10.000001)
	}
	snap := r.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("got %d histograms", len(snap.Histograms))
	}
	hs := snap.Histograms[0]
	if math.Abs(hs.P50-50) > 1 || math.Abs(hs.P95-95) > 1 || math.Abs(hs.P99-99) > 1 {
		t.Errorf("snapshot quantiles p50=%g p95=%g p99=%g, want ≈50/95/99", hs.P50, hs.P95, hs.P99)
	}
	if got := hs.Quantile(0.5); math.Abs(got-hs.P50) > 1e-12 {
		t.Errorf("HistogramSnapshot.Quantile(0.5) = %g, snapshot P50 = %g", got, hs.P50)
	}
	// An empty histogram keeps zero quantiles (omitted from JSON), not NaN.
	r2 := NewRegistry()
	r2.Histogram("empty", "", DefBuckets)
	if hs := r2.Snapshot().Histograms[0]; hs.P50 != 0 || hs.P95 != 0 || hs.P99 != 0 {
		t.Errorf("empty histogram snapshot quantiles = %g/%g/%g, want zeros", hs.P50, hs.P95, hs.P99)
	}
}
