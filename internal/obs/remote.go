package obs

// Cross-process telemetry federation: span records produced in a worker
// process, relayed to the coordinator over the fabric, rebased onto the
// coordinator's clock and merged into one multi-process timeline.
//
// The design constraint is the fabric's merge contract: the campaign
// Result must stay bit-identical to a Workers=1 run with telemetry on,
// off, or half-delivered. Remote spans therefore ride existing frames as
// optional payload (bounded per frame, dropped — never blocked on —
// under backpressure) and land in a bounded side store on the observer;
// nothing on this path can stall or reorder the merge.

import "sort"

// RemoteSpan is one completed span recorded in another process (a fabric
// worker) and relayed here. Timestamps are absolute microseconds on the
// *sender's* clock until the receiver rebases them with the estimated
// clock offset; after AddRemoteSpans they are on the local clock.
type RemoteSpan struct {
	// Worker names the originating process; the coordinator fills it in
	// from the authenticated connection, never from the payload.
	Worker string `json:"worker,omitempty"`
	// Name is the phase: "decode" (grant receipt to compute start),
	// "evaluate" (chunk computation) or "encode" (result assembly).
	Name string `json:"name"`
	// ID and Parent link the span into the coordinator-assigned trace:
	// Parent is the granting lease id (the per-chunk span context carried
	// by the grant frame), ID a value derived from it per phase.
	ID     uint64 `json:"id,omitempty"`
	Parent uint64 `json:"parent,omitempty"`
	// Epoch scopes the span to one campaign run, exactly like leases.
	Epoch uint64 `json:"epoch,omitempty"`
	// Chunk is the grid chunk index the span worked on.
	Chunk int `json:"chunk"`
	// StartUS is unix microseconds; DurUS the span length.
	StartUS int64 `json:"start_us"`
	DurUS   int64 `json:"dur_us"`
}

// EstimateOffset computes a worker clock offset by the RTT-midpoint
// method. The coordinator stamped sentUS (its clock) on an outbound
// frame; the worker echoed it back alongside holdUS (worker-measured
// microseconds between receiving that stamp and replying) and remoteUS
// (the worker clock at reply); recvUS is the coordinator clock when the
// reply arrived. The round trip excluding the hold is then
//
//	rtt = recvUS - sentUS - holdUS
//
// and, assuming the two legs are symmetric, the reply left the worker at
// coordinator time recvUS - rtt/2, so
//
//	offset = remoteUS - (recvUS - rtt/2)
//
// with worker_time - offset = coordinator_time. Samples with negative
// rtt (clock steps, reordered frames) are rejected; callers should keep
// the offset from the smallest-rtt sample, whose midpoint assumption has
// the least room to be wrong.
func EstimateOffset(sentUS, holdUS, remoteUS, recvUS int64) (offsetUS, rttUS int64, ok bool) {
	rtt := recvUS - sentUS - holdUS
	if sentUS == 0 || remoteUS == 0 || rtt < 0 {
		return 0, 0, false
	}
	return remoteUS - (recvUS - rtt/2), rtt, true
}

// DefaultRemoteSpanCap bounds the observer's remote-span store: one
// entry per relayed span, three per chunk, so the default covers runs in
// the hundreds of thousands of trials before dropping.
const DefaultRemoteSpanCap = 16384

// AddRemoteSpans appends relayed (already clock-rebased) span records to
// the observer's remote store. The store is bounded by WithRemoteSpanCap
// (default DefaultRemoteSpanCap); overflow is counted on the registry
// counter obs_remote_spans_dropped and dropped — federation telemetry
// never grows without bound and never blocks. Nil-safe.
func (o *Observer) AddRemoteSpans(spans ...RemoteSpan) {
	if o == nil || len(spans) == 0 {
		return
	}
	dropped := 0
	o.mu.Lock()
	cap := o.remoteCap
	if cap <= 0 {
		cap = DefaultRemoteSpanCap
	}
	for _, rs := range spans {
		if len(o.remote) >= cap {
			dropped++
			continue
		}
		o.remote = append(o.remote, rs)
	}
	o.mu.Unlock()
	if dropped > 0 {
		o.reg.Counter("obs_remote_spans_dropped",
			"Relayed remote spans dropped by the observer's remote-span cap.").Add(int64(dropped))
	}
}

// RemoteSpans returns a copy of the relayed span records collected so far.
func (o *Observer) RemoteSpans() []RemoteSpan {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]RemoteSpan(nil), o.remote...)
}

// WithRemoteSpanCap overrides the remote-span store bound (n <= 0 keeps
// the default).
func WithRemoteSpanCap(n int) Option { return func(o *Observer) { o.remoteCap = n } }

// remotePhaseTID maps the per-chunk phases onto fixed thread lanes so
// each worker's process track renders decode / evaluate / encode as
// three stacked rows (a worker queues the next chunk's decode while the
// current one evaluates, so the phases of different chunks overlap).
func remotePhaseTID(name string) int {
	switch name {
	case "decode":
		return 1
	case "evaluate":
		return 2
	case "encode":
		return 3
	}
	return 4
}

// remoteChromeEvents renders the relayed spans as Chrome trace events,
// one process lane (pid) per worker. Pid 1 is the local process; workers
// get 2..n in sorted-name order so lane assignment is deterministic.
// Metadata records name the lanes for Perfetto / chrome://tracing.
func (o *Observer) remoteChromeEvents(epochUS int64) []ChromeEvent {
	remote := o.RemoteSpans()
	if len(remote) == 0 {
		return nil
	}
	names := make([]string, 0, 4)
	seen := map[string]bool{}
	for _, rs := range remote {
		if !seen[rs.Worker] {
			seen[rs.Worker] = true
			names = append(names, rs.Worker)
		}
	}
	sort.Strings(names)
	pid := make(map[string]int, len(names))
	out := make([]ChromeEvent, 0, len(remote)+2*len(names)+1)
	out = append(out, ChromeEvent{
		Name: "process_name", Phase: "M", PID: 1,
		Args: map[string]any{"name": "coordinator"},
	})
	for i, n := range names {
		pid[n] = 2 + i
		out = append(out, ChromeEvent{
			Name: "process_name", Phase: "M", PID: pid[n],
			Args: map[string]any{"name": "worker " + n},
		})
	}
	for _, rs := range remote {
		out = append(out, ChromeEvent{
			Name:  rs.Name,
			Phase: "X",
			TS:    float64(rs.StartUS - epochUS),
			Dur:   float64(rs.DurUS),
			PID:   pid[rs.Worker],
			TID:   remotePhaseTID(rs.Name),
			Args: map[string]any{
				"worker": rs.Worker,
				"chunk":  rs.Chunk,
				"lease":  rs.Parent,
				"epoch":  rs.Epoch,
			},
		})
	}
	return out
}
