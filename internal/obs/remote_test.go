package obs

import "testing"

func TestEstimateOffset(t *testing.T) {
	// Symmetric path, worker clock 1000µs ahead: sent at 100 (coordinator
	// clock), one-way 50, the worker holds 200 and replies at worker time
	// 1350 (= coordinator 350 + skew); the reply lands at 400.
	off, rtt, ok := EstimateOffset(100, 200, 1350, 400)
	if !ok || rtt != 100 || off != 1000 {
		t.Fatalf("EstimateOffset = (%d, %d, %v), want (1000, 100, true)", off, rtt, ok)
	}
	// Same exchange with perfectly aligned clocks.
	off, rtt, ok = EstimateOffset(100, 200, 350, 400)
	if !ok || rtt != 100 || off != 0 {
		t.Fatalf("EstimateOffset = (%d, %d, %v), want (0, 100, true)", off, rtt, ok)
	}
	// Rejections: no coordinator stamp, no worker clock, negative rtt.
	for _, c := range [][4]int64{
		{0, 0, 350, 400},
		{100, 0, 0, 400},
		{100, 400, 350, 400},
	} {
		if _, _, ok := EstimateOffset(c[0], c[1], c[2], c[3]); ok {
			t.Errorf("EstimateOffset(%v) accepted, want rejected", c)
		}
	}
}

func TestAddRemoteSpansBounded(t *testing.T) {
	o := New(WithRemoteSpanCap(4))
	spans := make([]RemoteSpan, 6)
	for i := range spans {
		spans[i] = RemoteSpan{ID: uint64(i + 1), Name: "evaluate"}
	}
	o.AddRemoteSpans(spans...)
	if got := o.RemoteSpans(); len(got) != 4 {
		t.Fatalf("kept %d spans, want the cap of 4", len(got))
	}
	if v := o.Metrics().Counter("obs_remote_spans_dropped", "").Value(); v != 2 {
		t.Fatalf("obs_remote_spans_dropped = %d, want 2", v)
	}

	// RemoteSpans hands out a copy, not internal storage.
	got := o.RemoteSpans()
	got[0].ID = 999
	if o.RemoteSpans()[0].ID == 999 {
		t.Fatal("RemoteSpans returned internal storage")
	}

	// A nil observer absorbs both directions.
	var nilO *Observer
	nilO.AddRemoteSpans(RemoteSpan{ID: 1})
	if nilO.RemoteSpans() != nil {
		t.Fatal("nil observer returned spans")
	}
}

// TestRemoteChromeTraceLanes verifies the multi-process rendering: pid 1
// is the coordinator, workers get deterministic pids in sorted-name
// order, phases land on fixed thread lanes, and — when no remote spans
// exist — no metadata records are emitted at all (local-only traces are
// unchanged by this feature).
func TestRemoteChromeTraceLanes(t *testing.T) {
	o := New()
	if evs := o.remoteChromeEvents(0); evs != nil {
		t.Fatalf("no remote spans should render nothing, got %d events", len(evs))
	}

	o.AddRemoteSpans(
		RemoteSpan{Worker: "wB", Name: "evaluate", ID: 6, Parent: 1, Chunk: 0, StartUS: 1000, DurUS: 5},
		RemoteSpan{Worker: "wA", Name: "decode", ID: 5, Parent: 1, Chunk: 1, StartUS: 2000, DurUS: 2},
	)
	evs := o.remoteChromeEvents(1000)

	meta := map[int]string{}
	var xs []ChromeEvent
	for _, ev := range evs {
		switch ev.Phase {
		case "M":
			if ev.Name != "process_name" {
				t.Fatalf("unexpected metadata record %q", ev.Name)
			}
			meta[ev.PID] = ev.Args["name"].(string)
		case "X":
			xs = append(xs, ev)
		default:
			t.Fatalf("unexpected phase %q", ev.Phase)
		}
	}
	if meta[1] != "coordinator" || meta[2] != "worker wA" || meta[3] != "worker wB" {
		t.Fatalf("process lanes misassigned: %v", meta)
	}
	if len(xs) != 2 {
		t.Fatalf("%d span events, want 2", len(xs))
	}
	for _, ev := range xs {
		switch ev.Name {
		case "evaluate":
			if ev.PID != 3 || ev.TID != 2 || ev.TS != 0 || ev.Dur != 5 {
				t.Fatalf("evaluate event misplaced: %+v", ev)
			}
		case "decode":
			if ev.PID != 2 || ev.TID != 1 || ev.TS != 1000 || ev.Dur != 2 {
				t.Fatalf("decode event misplaced: %+v", ev)
			}
		default:
			t.Fatalf("unexpected span event %q", ev.Name)
		}
	}
}

// TestExportCarriesRemoteSpans pins the trace export: relayed spans land
// in the Trace struct and in the merged Chrome trace.
func TestExportCarriesRemoteSpans(t *testing.T) {
	o := New()
	sp := o.StartSpan("local")
	sp.End()
	o.AddRemoteSpans(RemoteSpan{Worker: "w0", Name: "evaluate", ID: 2, Parent: 1, StartUS: 1, DurUS: 1})
	tr := o.Export()
	if len(tr.RemoteSpans) != 1 || tr.RemoteSpans[0].Worker != "w0" {
		t.Fatalf("Trace.RemoteSpans = %+v, want the relayed span", tr.RemoteSpans)
	}
	found := false
	for _, ev := range tr.ChromeEvents {
		if ev.Phase == "X" && ev.Name == "evaluate" && ev.PID == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("merged Chrome trace lost the remote span")
	}
}
