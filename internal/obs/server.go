package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
)

// ServerConfig selects what the observability HTTP server exposes.
// Registry enables /metrics and /metrics.json; Bus enables the /events
// stream; Progress enables the /progress snapshot. /healthz, /buildinfo
// and /dashboard are always mounted.
type ServerConfig struct {
	Registry *Registry
	Bus      *Bus
	Progress *Tracker
}

// Serve starts the observability HTTP server on addr:
//
//	/metrics       Prometheus text exposition
//	/metrics.json  JSON registry snapshot
//	/events        NDJSON (or SSE) live event stream with replay
//	/progress      JSON progress snapshot
//	/dashboard     self-contained live HTML dashboard
//	/healthz       liveness probe
//	/buildinfo     module, VCS and toolchain identity
//
// The server runs until Close/Shutdown. Endpoints whose backing component
// is absent from cfg respond 404.
func Serve(addr string, cfg ServerConfig) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	if cfg.Registry != nil {
		mux.Handle("/metrics", cfg.Registry.Handler())
		mux.Handle("/metrics.json", cfg.Registry.Handler())
	}
	mux.HandleFunc("/healthz", healthzHandler)
	mux.HandleFunc("/buildinfo", buildinfoHandler)
	mux.Handle("/dashboard", dashboardHandler())
	if cfg.Bus != nil {
		mux.Handle("/events", eventsHandler(cfg.Bus))
	}
	if cfg.Progress != nil {
		mux.Handle("/progress", progressHandler(cfg.Progress))
	}
	m := &MetricsServer{
		srv:  &http.Server{Handler: mux},
		addr: ln.Addr().String(),
		done: make(chan struct{}),
	}
	go func() {
		defer close(m.done)
		_ = m.srv.Serve(ln)
	}()
	return m, nil
}

// healthzHandler is the liveness probe: serving implies alive.
func healthzHandler(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte("ok\n"))
}

// BuildInfo is the /buildinfo document.
type BuildInfo struct {
	GoVersion string `json:"go_version"`
	Path      string `json:"path,omitempty"`
	Module    string `json:"module,omitempty"`
	Version   string `json:"version,omitempty"`
	// Settings carries the embedded build settings (VCS revision, time,
	// dirty flag, GOOS/GOARCH, …) when the binary has them.
	Settings map[string]string `json:"settings,omitempty"`
}

// CollectBuildInfo reports the binary's identity from the embedded
// runtime/debug build info (tests and go-run binaries degrade to the
// toolchain version alone). It backs both /buildinfo and the flight
// recorder's buildinfo.json.
func CollectBuildInfo() BuildInfo {
	info := BuildInfo{GoVersion: runtime.Version()}
	if bi, ok := debug.ReadBuildInfo(); ok {
		info.Path = bi.Path
		info.Module = bi.Main.Path
		info.Version = bi.Main.Version
		if len(bi.Settings) > 0 {
			info.Settings = make(map[string]string, len(bi.Settings))
			for _, s := range bi.Settings {
				info.Settings[s.Key] = s.Value
			}
		}
	}
	return info
}

// buildinfoHandler serves CollectBuildInfo.
func buildinfoHandler(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, CollectBuildInfo())
}

// progressHandler serves the tracker's live snapshot.
func progressHandler(t *Tracker) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, t.Snapshot())
	})
}

// eventsHandler streams the bus. Default framing is NDJSON (one BusEvent
// document per line); Server-Sent Events framing (id:/data: records,
// suitable for EventSource) is selected by Accept: text/event-stream or
// ?sse=1. Replay: ?from=N resumes from sequence number N (0 = everything
// the replay ring still holds); an SSE reconnect's Last-Event-ID header
// does the same implicitly. The stream runs until the client disconnects
// or the server shuts down; a slow client only ever loses events from its
// own bounded buffer (visible in the bus's dropped counter), never stalls
// a publisher.
func eventsHandler(b *Bus) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		flusher, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "streaming unsupported", http.StatusInternalServerError)
			return
		}
		sse := req.URL.Query().Get("sse") == "1" ||
			strings.Contains(req.Header.Get("Accept"), "text/event-stream")
		var from uint64
		if v := req.URL.Query().Get("from"); v != "" {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				http.Error(w, "bad from parameter", http.StatusBadRequest)
				return
			}
			from = n
		} else if id := req.Header.Get("Last-Event-ID"); id != "" {
			if n, err := strconv.ParseUint(id, 10, 64); err == nil {
				from = n + 1
			}
		}
		if sse {
			w.Header().Set("Content-Type", "text/event-stream")
			w.Header().Set("Cache-Control", "no-cache")
		} else {
			w.Header().Set("Content-Type", "application/x-ndjson")
		}
		w.WriteHeader(http.StatusOK)
		flusher.Flush()

		sub := b.Subscribe(from, 1024)
		defer sub.Close()
		for {
			ev, ok := sub.Next(req.Context())
			if !ok {
				return
			}
			line, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			if sse {
				if _, err := fmt.Fprintf(w, "id: %d\ndata: %s\n\n", ev.Seq, line); err != nil {
					return
				}
			} else {
				if _, err := fmt.Fprintf(w, "%s\n", line); err != nil {
					return
				}
			}
			flusher.Flush()
		}
	})
}
