package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// startServer boots a full observability server on an ephemeral port and
// returns it with its base URL.
func startServer(t *testing.T, cfg ServerConfig) (*MetricsServer, string) {
	t.Helper()
	srv, err := Serve("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, "http://" + srv.Addr()
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s read: %v", url, err)
	}
	return resp, body
}

func TestHealthz(t *testing.T) {
	_, base := startServer(t, ServerConfig{})
	resp, body := get(t, base+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain", ct)
	}
	if string(body) != "ok\n" {
		t.Errorf("body = %q, want ok\\n", body)
	}
}

func TestBuildinfo(t *testing.T) {
	_, base := startServer(t, ServerConfig{})
	resp, body := get(t, base+"/buildinfo")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
	var info BuildInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatalf("buildinfo not JSON: %v\n%s", err, body)
	}
	if info.GoVersion == "" {
		t.Error("buildinfo go_version is empty")
	}
}

// TestServerShutdownPath is the shutdown regression: Close must stop the
// listener (subsequent requests fail), terminate the serving goroutine,
// and stay idempotent alongside Shutdown.
func TestServerShutdownPath(t *testing.T) {
	srv, base := startServer(t, ServerConfig{})
	if resp, _ := get(t, base+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-shutdown healthz status = %d", resp.StatusCode)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("GET succeeded after Close; listener still open")
	}
	if err := srv.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Errorf("Shutdown after Close: %v", err)
	}
}

// TestServerShutdownWithActiveStream: a graceful-with-deadline shutdown
// must return even while an /events subscriber is blocked mid-stream.
func TestServerShutdownWithActiveStream(t *testing.T) {
	bus := NewBus(64)
	srv, base := startServer(t, ServerConfig{Bus: bus})
	resp, err := http.Get(base + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
		defer cancel()
		done <- srv.Shutdown(ctx)
	}()
	select {
	case <-done:
		// Shutdown returned; error or not, it must not hang.
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown hung on an active event stream")
	}
}

func TestEventsNDJSONReplay(t *testing.T) {
	bus := NewBus(64)
	_, base := startServer(t, ServerConfig{Bus: bus})
	for i := 0; i < 6; i++ {
		bus.Publish("event", "pre", Int("i", i))
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, base+"/events?from=4", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}

	// Replay must deliver exactly seqs 4..6, then live events continue on
	// the same stream.
	bus.Publish("event", "live")
	sc := bufio.NewScanner(resp.Body)
	var seqs []uint64
	for len(seqs) < 4 && sc.Scan() {
		var ev BusEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		seqs = append(seqs, ev.Seq)
	}
	want := []uint64{4, 5, 6, 7}
	for i, w := range want {
		if i >= len(seqs) || seqs[i] != w {
			t.Fatalf("streamed seqs = %v, want %v", seqs, want)
		}
	}
}

func TestEventsBadFromRejected(t *testing.T) {
	bus := NewBus(64)
	_, base := startServer(t, ServerConfig{Bus: bus})
	resp, _ := get(t, base+"/events?from=notanumber")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d, want 400", resp.StatusCode)
	}
}

func TestEventsSSEFraming(t *testing.T) {
	bus := NewBus(64)
	_, base := startServer(t, ServerConfig{Bus: bus})
	bus.Publish("event", "one")
	bus.Publish("event", "two")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, base+"/events?sse=1&from=1", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q, want text/event-stream", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var lines []string
	for len(lines) < 4 && sc.Scan() {
		if sc.Text() != "" {
			lines = append(lines, sc.Text())
		}
	}
	if len(lines) < 4 || lines[0] != "id: 1" || !strings.HasPrefix(lines[1], "data: ") ||
		lines[2] != "id: 2" || !strings.HasPrefix(lines[3], "data: ") {
		t.Fatalf("SSE frames = %q, want id:/data: pairs for seqs 1 and 2", lines)
	}
	var ev BusEvent
	if err := json.Unmarshal([]byte(strings.TrimPrefix(lines[1], "data: ")), &ev); err != nil {
		t.Fatalf("SSE data payload not JSON: %v", err)
	}
	if ev.Name != "one" {
		t.Errorf("first SSE event = %+v, want name=one", ev)
	}
}

// TestEventsLastEventIDResume: an EventSource reconnect sends the last
// seen id; the server must resume from id+1.
func TestEventsLastEventIDResume(t *testing.T) {
	bus := NewBus(64)
	_, base := startServer(t, ServerConfig{Bus: bus})
	for i := 0; i < 5; i++ {
		bus.Publish("event", "e")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, base+"/events?sse=1", nil)
	req.Header.Set("Last-Event-ID", "3")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if line := sc.Text(); line != "" {
			if line != "id: 4" {
				t.Errorf("first frame after Last-Event-ID: 3 is %q, want id: 4", line)
			}
			return
		}
	}
	t.Fatal("no SSE frame received")
}

func TestProgressEndpoint(t *testing.T) {
	bus := NewBus(64)
	tracker := NewTracker(bus)
	_, base := startServer(t, ServerConfig{Bus: bus, Progress: tracker})
	bus.Publish("campaign_start", "c1", Int("trials_total", 1000), Int("trials_done", 0))
	bus.Publish("campaign_checkpoint", "c1",
		Int("trials_done", 200), Int("trials_total", 1000),
		Float("escape_rate", 0.1), Float("half_width", 0.04))

	resp, body := get(t, base+"/progress")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
	var snap ProgressSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("progress not JSON: %v\n%s", err, body)
	}
	if len(snap.Campaigns) != 1 || snap.Campaigns[0].TrialsDone != 200 ||
		snap.Campaigns[0].HalfWidth != 0.04 {
		t.Errorf("progress campaigns = %+v", snap.Campaigns)
	}
	if snap.Seq != 2 {
		t.Errorf("progress seq = %d, want 2", snap.Seq)
	}
}

func TestDashboardServedAndSelfContained(t *testing.T) {
	_, base := startServer(t, ServerConfig{})
	resp, body := get(t, base+"/dashboard")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("Content-Type = %q, want text/html", ct)
	}
	html := string(body)
	if html != DashboardHTML {
		t.Error("served dashboard differs from DashboardHTML")
	}
	for _, marker := range []string{"http://", "https://", "//cdn", "@import", "integrity="} {
		if strings.Contains(html, marker) {
			t.Errorf("dashboard contains external reference %q — must be self-contained", marker)
		}
	}
	for _, needed := range []string{"/progress", "/events?sse=1", "/metrics.json", "EventSource"} {
		if !strings.Contains(html, needed) {
			t.Errorf("dashboard missing %q wiring", needed)
		}
	}
}

// TestEndpointsAbsentWithoutBackingComponent: endpoints whose component is
// not configured respond 404 instead of panicking on nil.
func TestEndpointsAbsentWithoutBackingComponent(t *testing.T) {
	_, base := startServer(t, ServerConfig{})
	for _, path := range []string{"/events", "/progress", "/metrics"} {
		if resp, _ := get(t, base+path); resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s without backing component = %d, want 404", path, resp.StatusCode)
		}
	}
}
