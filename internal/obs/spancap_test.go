package obs

import (
	"fmt"
	"testing"
)

func TestSpanCapEvictsOldestRoots(t *testing.T) {
	o := New(WithSpanCap(3))
	for i := 0; i < 5; i++ {
		s := o.StartSpan(fmt.Sprintf("root-%d", i))
		s.End()
	}
	roots := o.Roots()
	if len(roots) != 3 {
		t.Fatalf("got %d roots, want 3", len(roots))
	}
	for i, want := range []string{"root-2", "root-3", "root-4"} {
		if roots[i].Name() != want {
			t.Errorf("roots[%d] = %q, want %q", i, roots[i].Name(), want)
		}
	}
	if got := o.Metrics().Counter("obs_spans_dropped", "").Value(); got != 2 {
		t.Errorf("obs_spans_dropped = %d, want 2", got)
	}
}

func TestSpanCapCountsWholeSubtree(t *testing.T) {
	o := New(WithSpanCap(1))
	root := o.StartSpan("big")
	c1 := root.StartChild("c1")
	c1.StartChild("c1a").End()
	c1.End()
	root.StartChild("c2").End()
	root.End()
	// Starting the next root evicts "big" and its 3 descendants: 4 spans.
	o.StartSpan("next")
	if got := o.Metrics().Counter("obs_spans_dropped", "").Value(); got != 4 {
		t.Errorf("obs_spans_dropped = %d, want 4", got)
	}
	if roots := o.Roots(); len(roots) != 1 || roots[0].Name() != "next" {
		t.Errorf("roots = %v, want [next]", roots)
	}
}

func TestSpanCapZeroKeepsUnbounded(t *testing.T) {
	o := New()
	for i := 0; i < 50; i++ {
		o.StartSpan("r").End()
	}
	if got := len(o.Roots()); got != 50 {
		t.Errorf("uncapped observer retained %d roots, want 50", got)
	}
	if got := o.Metrics().Counter("obs_spans_dropped", "").Value(); got != 0 {
		t.Errorf("obs_spans_dropped = %d, want 0", got)
	}
}

func TestObserverBusMirrorsSpans(t *testing.T) {
	bus := NewBus(64)
	sub := bus.Subscribe(0, 64)
	o := New(WithBus(bus))
	root := o.StartSpan("integrate", String("system", "demo"))
	child := root.StartChild("condense")
	child.Event("merge", String("a", "p1"), Float("mutual", 0.7))
	child.End()
	root.End()

	evs := drain(sub)
	if len(evs) != 5 {
		t.Fatalf("got %d mirrored events, want 5: %+v", len(evs), evs)
	}
	type want struct{ kind, name, span string }
	wants := []want{
		{"span_start", "integrate", ""},
		{"span_start", "condense", "integrate"},
		{"event", "merge", "condense"},
		{"span_end", "condense", ""},
		{"span_end", "integrate", ""},
	}
	for i, w := range wants {
		ev := evs[i]
		if ev.Kind != w.kind || ev.Name != w.name || ev.Span != w.span {
			t.Errorf("event %d = {%s %s span=%q}, want {%s %s span=%q}",
				i, ev.Kind, ev.Name, ev.Span, w.kind, w.name, w.span)
		}
	}
	if evs[0].Attrs["system"] != "demo" {
		t.Errorf("span_start attrs = %v", evs[0].Attrs)
	}
	if d, ok := evs[3].Attrs["duration_ms"].(float64); !ok || d < 0 {
		t.Errorf("span_end duration_ms = %v", evs[3].Attrs["duration_ms"])
	}
}

func TestObserverBusMirrorDoubleEndOnce(t *testing.T) {
	bus := NewBus(64)
	sub := bus.Subscribe(0, 64)
	o := New(WithBus(bus))
	s := o.StartSpan("once")
	s.End()
	s.End()
	evs := drain(sub)
	ends := 0
	for _, ev := range evs {
		if ev.Kind == "span_end" {
			ends++
		}
	}
	if ends != 1 {
		t.Errorf("double End published %d span_end events, want 1", ends)
	}
}
