// Package robust certifies the stability of an integration under
// perturbation of its estimated spec inputs. The paper's probability
// factors p_i1·p_i2·p_i3 (carried here as influence-edge weights) and the
// Table-1 criticalities are estimates, not measurements; a placement that
// flips when an estimate moves a few percent rests on noise. The
// certifier draws an ensemble of perturbed specifications within ±ε
// relative bands, re-runs the integration pipeline on each, and reports
// how often the placement survives, how far the containment metrics
// drift, and which single parameters the outcome is most sensitive to.
//
// # Monotone stability ladder
//
// Each ensemble member draws one direction vector d ∈ [-1,1]^P (P = the
// number of perturbable parameters) from its own splitmix64-seeded PCG
// substream, then walks the ε ladder by scaling the same direction:
// parameter x becomes x·(1+ε·d_j), clamped to its legal range. A member
// counts as stable at level ε_k only when its placement matches the
// baseline at every level up to and including ε_k — the perturbation
// balls are nested, so the stable fraction is monotonically non-increasing
// in ε by construction, and at ε = 0 the perturbation is the identity so
// the fraction is exactly 1.
package robust

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"strings"

	"repro/internal/ledger"
	"repro/internal/obs"
	"repro/internal/spec"
	"repro/internal/stage"
)

// Errors returned by Certify.
var (
	ErrNoEvaluator = errors.New("robust: nil evaluator")
	ErrNoSystem    = errors.New("robust: nil system")
	ErrBadEpsilon  = errors.New("robust: epsilon out of range")
	ErrBaseline    = errors.New("robust: baseline evaluation failed")
)

// Outcome is what the evaluator reports for one (possibly perturbed)
// specification: the canonical placement and the containment metrics
// whose drift the certificate tracks.
type Outcome struct {
	// Placement is the canonical placement key (see CanonicalPlacement);
	// two outcomes with equal Placement put the same processes together
	// on the same machines, up to HW-node relabelling.
	Placement string `json:"placement"`
	// EscapeRate is the measured fault-escape rate of the placement.
	EscapeRate float64 `json:"escape_rate"`
	// CrossInfluence is the total influence crossing HW boundaries
	// (the §5.3 goodness criterion; lower is better).
	CrossInfluence float64 `json:"cross_influence"`
}

// Evaluator integrates one specification and measures it. Implementations
// must be deterministic: the certificate compares outcomes across
// perturbed re-runs, so run-to-run noise in the evaluator would read as
// instability of the integration.
type Evaluator func(sys *spec.System) (Outcome, error)

// Config parameterises a certification run.
type Config struct {
	// Epsilons is the ladder of relative perturbation half-widths
	// (e.g. 0, 0.05, 0.10). Values are sorted ascending and deduplicated;
	// each must lie in [0,1). An empty ladder defaults to
	// {0, 0.01, 0.05, 0.10}.
	Epsilons []float64
	// Samples is the ensemble size per ladder level (default 20).
	Samples int
	// Seed drives the per-sample direction draws; a fixed seed makes the
	// whole certificate reproducible.
	Seed uint64
	// SkipSensitivity disables the one-at-a-time parameter probes (which
	// cost two evaluations per spec parameter).
	SkipSensitivity bool
	// Span receives one "robust_level" event per ladder level and one
	// "robust_sensitivity" event per flipped parameter; Metrics tracks
	// evaluations and the stable fraction at the widest ε.
	Span    *obs.Span
	Metrics *obs.Registry
	// Bus, when set, streams live certification progress: one
	// "certify_member" event per ensemble evaluation, one "certify_level"
	// event per ladder ε, and a final "certify_done" event.
	Bus *obs.Bus
	// Ledger, when set, receives one "certify_level" provenance record
	// per ladder ε and a final "certify" summary record. Nil records
	// nothing.
	Ledger *ledger.Ledger
	// Ctx, when non-nil, is polled between evaluations.
	Ctx context.Context
}

// Level is the certificate row for one ε.
type Level struct {
	Epsilon float64 `json:"epsilon"`
	// StableFraction is the fraction of ensemble members whose placement
	// matched the baseline at this and every smaller ε.
	StableFraction float64 `json:"stable_fraction"`
	// MeanEscapeDelta / WorstEscapeDelta are the mean and maximum signed
	// drift of the escape rate across the ensemble at this ε (positive =
	// worse than baseline).
	MeanEscapeDelta  float64 `json:"mean_escape_delta"`
	WorstEscapeDelta float64 `json:"worst_escape_delta"`
	// MeanInfluenceDelta / WorstInfluenceDelta track the cross-HW
	// influence the same way.
	MeanInfluenceDelta  float64 `json:"mean_influence_delta"`
	WorstInfluenceDelta float64 `json:"worst_influence_delta"`
	// Errors counts ensemble members whose perturbed integration failed
	// outright at this ε; they count as unstable and are excluded from
	// the delta statistics.
	Errors int `json:"errors,omitempty"`
}

// Sensitivity reports a one-at-a-time probe of a single spec parameter at
// the widest ε of the ladder.
type Sensitivity struct {
	// Parameter names the probed input: "criticality(p4)" or
	// "weight(p1>p2)".
	Parameter string `json:"parameter"`
	// Flipped is true when moving this one parameter by ±ε changed the
	// placement (or broke the integration).
	Flipped bool `json:"flipped"`
	// EscapeDelta is the largest absolute escape-rate drift of the two
	// probes.
	EscapeDelta float64 `json:"escape_delta"`
}

// Certificate is the robustness report of one integration.
type Certificate struct {
	// Baseline is the unperturbed outcome every comparison is against.
	Baseline Outcome `json:"baseline"`
	// Levels holds one row per ladder ε, ascending; StableFraction is
	// monotonically non-increasing down the rows.
	Levels []Level `json:"levels"`
	// Sensitivities ranks the spec parameters most able to move the
	// outcome, placement-flipping parameters first, then by escape
	// drift. Empty when Config.SkipSensitivity was set.
	Sensitivities []Sensitivity `json:"sensitivities,omitempty"`
	// Samples and Seed echo the configuration.
	Samples int    `json:"samples"`
	Seed    uint64 `json:"seed"`
	// Evaluations counts evaluator calls spent (baseline + ensemble +
	// probes).
	Evaluations int `json:"evaluations"`
}

// StableAt returns the stable fraction at the widest ladder ε.
func (c *Certificate) StableAt() float64 {
	if len(c.Levels) == 0 {
		return 0
	}
	return c.Levels[len(c.Levels)-1].StableFraction
}

// CanonicalPlacement reduces an assignment (process/replica name → HW
// node) to a label-invariant partition key: members are grouped by HW
// node, each group sorted, groups sorted, groups joined by "|". Two
// placements that co-locate the same sets of members map to the same key
// even when the HW nodes are named differently.
func CanonicalPlacement(assign map[string]string) string {
	byNode := map[string][]string{}
	for m, n := range assign {
		byNode[n] = append(byNode[n], m)
	}
	groups := make([]string, 0, len(byNode))
	for _, ms := range byNode {
		sort.Strings(ms)
		groups = append(groups, strings.Join(ms, ","))
	}
	sort.Strings(groups)
	return strings.Join(groups, "|")
}

// param is one perturbable spec input.
type param struct {
	name  string
	get   func(*spec.System) float64
	set   func(*spec.System, float64)
	clamp func(float64) float64
}

func clamp01(x float64) float64 { return math.Min(1, math.Max(0, x)) }
func clampPos(x float64) float64 {
	if x < 0 {
		return 0
	}
	return x
}

// parameters enumerates the perturbable inputs of a specification in a
// fixed order: every process criticality, then every influence weight.
// The weight of an influence edge is the product of the paper's p_i1,
// p_i2, p_i3 factors, so a ±ε relative band on the weight covers a
// combined ±ε mis-estimation of the factors.
func parameters(sys *spec.System) []param {
	var ps []param
	for i := range sys.Processes {
		i := i
		ps = append(ps, param{
			name:  "criticality(" + sys.Processes[i].Name + ")",
			get:   func(s *spec.System) float64 { return s.Processes[i].Criticality },
			set:   func(s *spec.System, v float64) { s.Processes[i].Criticality = v },
			clamp: clampPos,
		})
	}
	for i := range sys.Influences {
		i := i
		e := sys.Influences[i]
		ps = append(ps, param{
			name:  "weight(" + e.From + ">" + e.To + ")",
			get:   func(s *spec.System) float64 { return s.Influences[i].Weight },
			set:   func(s *spec.System, v float64) { s.Influences[i].Weight = v },
			clamp: clamp01,
		})
	}
	return ps
}

// clone deep-copies the parts of a System the perturbation touches.
func clone(sys *spec.System) *spec.System {
	out := *sys
	out.Processes = append([]spec.Process(nil), sys.Processes...)
	out.Influences = append([]spec.Influence(nil), sys.Influences...)
	return &out
}

// splitmix64 is the SplitMix64 finalizer (same mixer faultsim uses for
// its substreams).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// sampleRNG returns the private substream of ensemble member i.
func sampleRNG(seed uint64, i int) *rand.Rand {
	base := splitmix64(seed + uint64(i)*0x9e3779b97f4a7c15)
	return rand.New(rand.NewPCG(splitmix64(base), splitmix64(base^0xda942042e4dd58b5)))
}

// Certify runs the certification: baseline, the ε ladder over the
// ensemble, and (unless disabled) the one-at-a-time sensitivity probes.
func Certify(sys *spec.System, eval Evaluator, cfg Config) (*Certificate, error) {
	wrap := func(node string, err error) error { return stage.Wrap("certify", "perturb", node, err) }
	if sys == nil {
		return nil, wrap("", ErrNoSystem)
	}
	if eval == nil {
		return nil, wrap("", ErrNoEvaluator)
	}
	eps, err := ladder(cfg.Epsilons)
	if err != nil {
		return nil, wrap("", err)
	}
	samples := cfg.Samples
	if samples <= 0 {
		samples = 20
	}

	var evalsCtr *obs.Counter
	var stableGauge *obs.Gauge
	if cfg.Metrics != nil {
		evalsCtr = cfg.Metrics.Counter("robust_evals_total", "perturbed integration evaluations")
		stableGauge = cfg.Metrics.Gauge("robust_stable_fraction", "placement-stability fraction at the widest epsilon")
	}
	evals := 0
	measure := func(s *spec.System, node string) (Outcome, error) {
		if cfg.Ctx != nil {
			if err := cfg.Ctx.Err(); err != nil {
				return Outcome{}, wrap(node, err)
			}
		}
		evals++
		if evalsCtr != nil {
			evalsCtr.Inc()
		}
		return eval(s)
	}

	base, err := measure(sys, "")
	if err != nil {
		return nil, wrap("", fmt.Errorf("%w: %w", ErrBaseline, err))
	}

	params := parameters(sys)
	// Direction vectors are drawn once per member, before the ladder walk,
	// so every ε level perturbs along the same ray (nested balls).
	dirs := make([][]float64, samples)
	for i := range dirs {
		rng := sampleRNG(cfg.Seed, i)
		d := make([]float64, len(params))
		for j := range d {
			d[j] = 2*rng.Float64() - 1
		}
		dirs[i] = d
	}

	cert := &Certificate{Baseline: base, Samples: samples, Seed: cfg.Seed}
	stable := make([]bool, samples)
	for i := range stable {
		stable[i] = true
	}
	for _, e := range eps {
		lvl := Level{Epsilon: e}
		var escSum, infSum float64
		measured := 0
		worstEsc, worstInf := math.Inf(-1), math.Inf(-1)
		for i := 0; i < samples; i++ {
			out, err := func() (Outcome, error) {
				if e == 0 {
					// ε=0 is the identity perturbation; reuse the baseline
					// instead of spending an evaluation per member.
					return base, nil
				}
				p := clone(sys)
				for j, pr := range params {
					pr.set(p, pr.clamp(pr.get(sys)*(1+e*dirs[i][j])))
				}
				return measure(p, fmt.Sprintf("sample-%d", i))
			}()
			if err != nil {
				if cfg.Ctx != nil && cfg.Ctx.Err() != nil {
					return nil, err
				}
				lvl.Errors++
				stable[i] = false
				if cfg.Bus != nil {
					cfg.Bus.Publish("certify_member", "certify",
						obs.Float("epsilon", e),
						obs.Int("sample", i),
						obs.Bool("error", true))
				}
				continue
			}
			measured++
			dEsc := out.EscapeRate - base.EscapeRate
			dInf := out.CrossInfluence - base.CrossInfluence
			escSum += dEsc
			infSum += dInf
			worstEsc = math.Max(worstEsc, dEsc)
			worstInf = math.Max(worstInf, dInf)
			if out.Placement != base.Placement {
				stable[i] = false
			}
			if cfg.Bus != nil {
				cfg.Bus.Publish("certify_member", "certify",
					obs.Float("epsilon", e),
					obs.Int("sample", i),
					obs.Bool("stable", stable[i]),
					obs.Float("escape_delta", dEsc))
			}
		}
		n := 0
		for _, ok := range stable {
			if ok {
				n++
			}
		}
		lvl.StableFraction = float64(n) / float64(samples)
		if measured > 0 {
			lvl.MeanEscapeDelta = escSum / float64(measured)
			lvl.MeanInfluenceDelta = infSum / float64(measured)
			lvl.WorstEscapeDelta = worstEsc
			lvl.WorstInfluenceDelta = worstInf
		}
		cert.Levels = append(cert.Levels, lvl)
		cfg.Ledger.Append(ledger.Record{
			Kind: ledger.KindCertifyLevel, Stage: "certify",
			A: fmt.Sprintf("ε=%g", e),
			Values: map[string]float64{
				"epsilon":              e,
				"stable_fraction":      lvl.StableFraction,
				"mean_escape_delta":    lvl.MeanEscapeDelta,
				"worst_escape_delta":   lvl.WorstEscapeDelta,
				"mean_influence_delta": lvl.MeanInfluenceDelta,
				"errors":               float64(lvl.Errors),
			},
		})
		if cfg.Span != nil {
			cfg.Span.Event("robust_level",
				obs.Float("epsilon", e),
				obs.Float("stable_fraction", lvl.StableFraction),
				obs.Float("worst_escape_delta", lvl.WorstEscapeDelta),
				obs.Int("errors", lvl.Errors))
		}
		if cfg.Bus != nil {
			cfg.Bus.Publish("certify_level", "certify",
				obs.Float("epsilon", e),
				obs.Float("stable_frac", lvl.StableFraction),
				obs.Float("worst_escape_delta", lvl.WorstEscapeDelta),
				obs.Int("errors", lvl.Errors))
		}
	}
	if stableGauge != nil {
		stableGauge.Set(cert.StableAt())
	}
	if cfg.Bus != nil {
		cfg.Bus.Publish("certify_done", "certify",
			obs.Int("levels", len(cert.Levels)),
			obs.Float("stable_frac_widest", cert.StableAt()))
	}

	if !cfg.SkipSensitivity && len(eps) > 0 && eps[len(eps)-1] > 0 {
		cert.Sensitivities, err = sensitivities(sys, params, base, eps[len(eps)-1], measure, cfg.Span)
		if err != nil {
			return nil, err
		}
	}
	cert.Evaluations = evals
	flipped := 0
	for _, s := range cert.Sensitivities {
		if s.Flipped {
			flipped++
		}
	}
	cfg.Ledger.Append(ledger.Record{
		Kind: ledger.KindCertify, Stage: "certify",
		Detail: fmt.Sprintf("baseline placement %s", base.Placement),
		Values: map[string]float64{
			"stable_fraction_widest": cert.StableAt(),
			"evaluations":            float64(cert.Evaluations),
			"samples":                float64(cert.Samples),
			"levels":                 float64(len(cert.Levels)),
			"flipped_parameters":     float64(flipped),
		},
	})
	return cert, nil
}

// sensitivities probes each parameter alone at ±eps and ranks the
// parameters by their power to move the outcome.
func sensitivities(sys *spec.System, params []param, base Outcome, eps float64,
	measure func(*spec.System, string) (Outcome, error), span *obs.Span) ([]Sensitivity, error) {
	out := make([]Sensitivity, 0, len(params))
	for _, pr := range params {
		s := Sensitivity{Parameter: pr.name}
		for _, sign := range []float64{1, -1} {
			p := clone(sys)
			pr.set(p, pr.clamp(pr.get(sys)*(1+sign*eps)))
			o, err := measure(p, pr.name)
			if err != nil {
				if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
					return nil, err
				}
				// A probe that breaks the integration outright is maximal
				// sensitivity, not a certification failure.
				s.Flipped = true
				continue
			}
			if o.Placement != base.Placement {
				s.Flipped = true
			}
			if d := math.Abs(o.EscapeRate - base.EscapeRate); d > s.EscapeDelta {
				s.EscapeDelta = d
			}
		}
		if span != nil && s.Flipped {
			span.Event("robust_sensitivity",
				obs.String("parameter", s.Parameter),
				obs.Float("escape_delta", s.EscapeDelta))
		}
		out = append(out, s)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Flipped != out[j].Flipped {
			return out[i].Flipped
		}
		return out[i].EscapeDelta > out[j].EscapeDelta
	})
	return out, nil
}

// ladder normalises the ε list: defaults, sort, dedupe, range check.
func ladder(eps []float64) ([]float64, error) {
	if len(eps) == 0 {
		eps = []float64{0, 0.01, 0.05, 0.10}
	}
	out := append([]float64(nil), eps...)
	sort.Float64s(out)
	dedup := out[:0]
	for i, e := range out {
		if e < 0 || e >= 1 || math.IsNaN(e) {
			return nil, fmt.Errorf("%w: %g (need 0 <= eps < 1)", ErrBadEpsilon, e)
		}
		if i > 0 && e == out[i-1] {
			continue
		}
		dedup = append(dedup, e)
	}
	return dedup, nil
}
