package robust

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"testing"

	"repro/internal/spec"
	"repro/internal/stage"
)

// twoProc is a minimal two-process system for synthetic evaluators.
func twoProc() *spec.System {
	return &spec.System{
		Name: "toy",
		Processes: []spec.Process{
			{Name: "p1", Criticality: 10, FT: 1, EST: 0, TCD: 10, CT: 1},
			{Name: "p2", Criticality: 5, FT: 1, EST: 0, TCD: 10, CT: 1},
		},
		Influences: []spec.Influence{{From: "p1", To: "p2", Weight: 0.5}},
		HWNodes:    2,
	}
}

// thresholdEvaluator flips the placement when any perturbed input drifts
// more than `tolerance` (relative) from its baseline value — a synthetic
// integration whose decision boundary is exactly known.
func thresholdEvaluator(base *spec.System, tolerance float64) Evaluator {
	return func(s *spec.System) (Outcome, error) {
		maxDrift := 0.0
		for i, p := range s.Processes {
			if b := base.Processes[i].Criticality; b != 0 {
				maxDrift = math.Max(maxDrift, math.Abs(p.Criticality-b)/b)
			}
		}
		for i, e := range s.Influences {
			if b := base.Influences[i].Weight; b != 0 {
				maxDrift = math.Max(maxDrift, math.Abs(e.Weight-b)/b)
			}
		}
		placement := "p1|p2"
		if maxDrift > tolerance {
			placement = "p1,p2"
		}
		return Outcome{Placement: placement, EscapeRate: maxDrift, CrossInfluence: 2 * maxDrift}, nil
	}
}

// TestCertifyStableAtZeroEpsilon: ε=0 is the identity perturbation, so
// the stability fraction at level 0 must be exactly 1 for any evaluator.
func TestCertifyStableAtZeroEpsilon(t *testing.T) {
	sys := twoProc()
	cert, err := Certify(sys, thresholdEvaluator(sys, 0), Config{
		Epsilons: []float64{0}, Samples: 16, Seed: 1, SkipSensitivity: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cert.Levels) != 1 || cert.Levels[0].StableFraction != 1.0 {
		t.Fatalf("stability at eps=0 = %+v, want exactly 1.0", cert.Levels)
	}
	if cert.Levels[0].WorstEscapeDelta != 0 || cert.Levels[0].WorstInfluenceDelta != 0 {
		t.Errorf("nonzero deltas at eps=0: %+v", cert.Levels[0])
	}
}

// TestCertifyMonotoneNonIncreasing is the property test of the ladder
// design: across many seeds and a known decision boundary, the stable
// fraction must never increase with ε, must be 1 at ε=0, and must reach
// 0 once every direction crosses the boundary.
func TestCertifyMonotoneNonIncreasing(t *testing.T) {
	sys := twoProc()
	eps := []float64{0, 0.02, 0.05, 0.1, 0.2, 0.4}
	for seed := uint64(0); seed < 20; seed++ {
		cert, err := Certify(sys, thresholdEvaluator(sys, 0.08), Config{
			Epsilons: eps, Samples: 12, Seed: seed, SkipSensitivity: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if cert.Levels[0].StableFraction != 1.0 {
			t.Fatalf("seed %d: fraction at eps=0 is %g, want 1.0",
				seed, cert.Levels[0].StableFraction)
		}
		for i := 1; i < len(cert.Levels); i++ {
			if cert.Levels[i].StableFraction > cert.Levels[i-1].StableFraction {
				t.Fatalf("seed %d: stability rose from %g (eps=%g) to %g (eps=%g)",
					seed, cert.Levels[i-1].StableFraction, cert.Levels[i-1].Epsilon,
					cert.Levels[i].StableFraction, cert.Levels[i].Epsilon)
			}
		}
		// ε=0.02 cannot cross the 0.08 boundary; ε=0.4 almost surely does
		// for every member (|d| would need to be < 0.2 for all 15 params).
		if cert.Levels[1].StableFraction != 1.0 {
			t.Errorf("seed %d: fraction at eps=0.02 = %g, want 1.0 (boundary is 0.08)",
				seed, cert.Levels[1].StableFraction)
		}
	}
}

// TestCertifyDeterministic: same config, same certificate, bit for bit.
func TestCertifyDeterministic(t *testing.T) {
	sys := twoProc()
	cfg := Config{Epsilons: []float64{0, 0.1}, Samples: 8, Seed: 3}
	a, err := Certify(sys, thresholdEvaluator(sys, 0.05), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Certify(sys, thresholdEvaluator(sys, 0.05), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("two identical certification runs disagree")
	}
}

// TestCertifySensitivities: a single parameter controlling the flip must
// rank first, flagged as flipping the placement.
func TestCertifySensitivities(t *testing.T) {
	sys := twoProc()
	// Flip iff p2's criticality moves at all; everything else inert.
	eval := func(s *spec.System) (Outcome, error) {
		placement := "p1|p2"
		d := math.Abs(s.Processes[1].Criticality - 5)
		if d > 0.01 {
			placement = "p1,p2"
		}
		return Outcome{Placement: placement, EscapeRate: d}, nil
	}
	cert, err := Certify(sys, eval, Config{Epsilons: []float64{0, 0.1}, Samples: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(cert.Sensitivities) != 3 { // 2 criticalities + 1 weight
		t.Fatalf("sensitivities = %d, want 3", len(cert.Sensitivities))
	}
	top := cert.Sensitivities[0]
	if top.Parameter != "criticality(p2)" || !top.Flipped {
		t.Errorf("top sensitivity = %+v, want criticality(p2) flipped", top)
	}
	for _, s := range cert.Sensitivities[1:] {
		if s.Flipped {
			t.Errorf("inert parameter %s reported as flipping", s.Parameter)
		}
	}
}

// TestCertifyEvaluatorErrors: a perturbed member whose integration fails
// counts as unstable (and is tallied in Errors), while a baseline
// failure aborts the certification.
func TestCertifyEvaluatorErrors(t *testing.T) {
	sys := twoProc()
	calls := 0
	eval := func(s *spec.System) (Outcome, error) {
		calls++
		// Baseline and the first ensemble member succeed; the remaining
		// three members fail.
		if calls > 2 {
			return Outcome{}, fmt.Errorf("perturbed integration exploded")
		}
		return Outcome{Placement: "p1|p2"}, nil
	}
	cert, err := Certify(sys, eval, Config{
		Epsilons: []float64{0.1}, Samples: 4, Seed: 1, SkipSensitivity: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	lvl := cert.Levels[0]
	if lvl.Errors != 3 || lvl.StableFraction != 0.25 {
		t.Errorf("level = %+v, want 3 errors and fraction 0.25", lvl)
	}

	bad := func(*spec.System) (Outcome, error) { return Outcome{}, fmt.Errorf("no mapping") }
	if _, err := Certify(sys, bad, Config{}); !errors.Is(err, ErrBaseline) {
		t.Errorf("baseline failure err = %v, want ErrBaseline", err)
	}
}

// TestCertifyValidation covers the classified configuration errors.
func TestCertifyValidation(t *testing.T) {
	sys := twoProc()
	ok := func(*spec.System) (Outcome, error) { return Outcome{}, nil }
	cases := []struct {
		name string
		sys  *spec.System
		eval Evaluator
		cfg  Config
		want error
	}{
		{"nil system", nil, ok, Config{}, ErrNoSystem},
		{"nil evaluator", sys, nil, Config{}, ErrNoEvaluator},
		{"negative epsilon", sys, ok, Config{Epsilons: []float64{-0.1}}, ErrBadEpsilon},
		{"epsilon >= 1", sys, ok, Config{Epsilons: []float64{1}}, ErrBadEpsilon},
		{"NaN epsilon", sys, ok, Config{Epsilons: []float64{math.NaN()}}, ErrBadEpsilon},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Certify(tc.sys, tc.eval, tc.cfg)
			if !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
			var se *stage.Error
			if !errors.As(err, &se) || se.Stage != "certify" {
				t.Errorf("err %v not classified under the certify stage", err)
			}
		})
	}
}

// TestCertifyCancellation: a dead context aborts between evaluations with
// the cancellation visible through the wrapping.
func TestCertifyCancellation(t *testing.T) {
	sys := twoProc()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Certify(sys, thresholdEvaluator(sys, 0), Config{Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// TestCanonicalPlacement: the key must be invariant under HW-node
// relabelling but distinguish different partitions.
func TestCanonicalPlacement(t *testing.T) {
	a := CanonicalPlacement(map[string]string{"p1": "n1", "p2": "n1", "p3": "n2"})
	b := CanonicalPlacement(map[string]string{"p1": "x", "p2": "x", "p3": "y"})
	if a != b {
		t.Errorf("relabelled placements differ: %q vs %q", a, b)
	}
	c := CanonicalPlacement(map[string]string{"p1": "n1", "p2": "n2", "p3": "n2"})
	if a == c {
		t.Errorf("different partitions share key %q", a)
	}
	if a != "p1,p2|p3" {
		t.Errorf("canonical key = %q, want \"p1,p2|p3\"", a)
	}
}

// TestLadderNormalisation: defaults, sorting, deduplication.
func TestLadderNormalisation(t *testing.T) {
	got, err := ladder(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []float64{0, 0.01, 0.05, 0.10}) {
		t.Errorf("default ladder = %v", got)
	}
	got, err = ladder([]float64{0.1, 0, 0.1, 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []float64{0, 0.05, 0.1}) {
		t.Errorf("normalised ladder = %v", got)
	}
}
