package scengen

import "fmt"

// The four topology families. Each builder only decides structure — which
// processes exist (with their role's attribute ranges) and which influence
// edges connect them (with their weight ranges) — on the serial shape
// stream; concrete values are drawn later on per-element substreams.

// Influence factors by coupling style (the catalogue the worked example
// uses).
const (
	facMsg    = "message-passing"
	facShm    = "shared-memory"
	facParam  = "parameter-passing"
	facTiming = "timing"
	facRes    = "resource-sharing"
)

// buildLadder grows an automotive/avionics criticality ladder: four tiers
// of descending criticality and replication, chain edges inside each tier
// and feed edges from every process up to the tier above it.
func buildLadder(g *genEnv, n int) build {
	rng := g.shape()
	// Tier fractions: safety 15%, control 25%, operational 35%, monitor
	// the rest. Every tier keeps at least one process.
	sizes := []int{n * 15 / 100, n * 25 / 100, n * 35 / 100}
	for i := range sizes {
		if sizes[i] < 1 {
			sizes[i] = 1
		}
	}
	rest := n - sizes[0] - sizes[1] - sizes[2]
	if rest < 1 {
		rest = 1
	}
	sizes = append(sizes, rest)

	type tierSpec struct {
		tag            string
		critLo, critHi float64
		fts            []int
		ctScale        float64
		factor         string
	}
	tiers := []tierSpec{
		{"safety", 16, 20, []int{2, 3}, 0.6, facMsg},
		{"ctl", 10, 15, []int{2}, 0.8, facShm},
		{"op", 4, 9, []int{1, 2}, 1.2, facMsg},
		{"mon", 1, 3, []int{1}, 1.5, facShm},
	}

	var b build
	tierOf := make([][]int, len(tiers)) // tier -> process indexes
	for t, ts := range tiers {
		for k := 0; k < sizes[t]; k++ {
			idx := len(b.protos)
			tierOf[t] = append(tierOf[t], idx)
			b.protos = append(b.protos, protoProcess{
				name:    fmt.Sprintf("%s-%02d", ts.tag, k),
				critLo:  ts.critLo,
				critHi:  ts.critHi,
				fts:     ts.fts,
				ctScale: ts.ctScale,
			})
		}
	}
	// Chain edges inside each tier (pipeline coupling), then one or two
	// feed edges from each process to the tier above: the operational
	// functions influence the controllers they supply, the controllers
	// the safety tier.
	for t, members := range tierOf {
		for k := 0; k+1 < len(members); k++ {
			b.edges = append(b.edges, protoEdge{
				from: members[k], to: members[k+1],
				wLo: 0.3, wHi: 0.6, factor: tiers[t].factor,
			})
		}
		if t == 0 {
			continue
		}
		above := tierOf[t-1]
		for _, from := range members {
			k := 1 + rng.IntN(2)
			for _, j := range pickDistinct(rng, len(above), k, -1) {
				b.edges = append(b.edges, protoEdge{
					from: from, to: above[j],
					wLo: 0.2, wHi: 0.5, factor: facMsg,
				})
			}
		}
	}
	// A sprinkle of downward diagnostics edges (safety state mirrored to
	// monitors) keeps the graph strongly coupled without cycles of high
	// weight.
	mon := tierOf[len(tierOf)-1]
	for _, j := range pickDistinct(rng, len(mon), 1+len(mon)/4, -1) {
		b.edges = append(b.edges, protoEdge{
			from: tierOf[0][rng.IntN(len(tierOf[0]))], to: mon[j],
			wLo: 0.05, wHi: 0.2, factor: facRes,
		})
	}
	return b
}

// buildMesh grows a microservice mesh: h hub services with a backbone
// ring, leaves calling one or two hubs each (and occasionally each
// other), hubs pushing back to some of their leaves.
func buildMesh(g *genEnv, n int) build {
	rng := g.shape()
	h := n / 8
	if h < 2 {
		h = 2
	}
	var b build
	for k := 0; k < h; k++ {
		b.protos = append(b.protos, protoProcess{
			name:   fmt.Sprintf("hub-%02d", k),
			critLo: 10, critHi: 18, fts: []int{2}, ctScale: 0.7,
		})
	}
	for k := 0; k < n-h; k++ {
		b.protos = append(b.protos, protoProcess{
			name:   fmt.Sprintf("svc-%03d", k),
			critLo: 1, critHi: 9, fts: []int{1, 1, 2}, ctScale: 1.1,
		})
	}
	// Hub backbone ring (shared state replication between hubs).
	for k := 0; k < h && h > 1; k++ {
		b.edges = append(b.edges, protoEdge{
			from: k, to: (k + 1) % h,
			wLo: 0.3, wHi: 0.6, factor: facShm,
		})
	}
	// Leaves: each calls 1-2 hubs; a faulty leaf corrupts the hub with
	// the call, and half the hubs push state back to the leaf.
	for k := h; k < n; k++ {
		for _, hub := range pickDistinct(rng, h, 1+rng.IntN(2), -1) {
			b.edges = append(b.edges, protoEdge{
				from: k, to: hub,
				wLo: 0.2, wHi: 0.5, factor: facMsg,
			})
			if rng.Float64() < 0.5 {
				b.edges = append(b.edges, protoEdge{
					from: hub, to: k,
					wLo: 0.1, wHi: 0.4, factor: facMsg,
				})
			}
		}
	}
	// Sparse leaf-to-leaf chatter (each ordered pair at most once).
	seen := make(map[[2]int]bool)
	for c := 0; c < (n-h)/6; c++ {
		pair := pickDistinct(rng, n-h, 2, -1)
		if len(pair) < 2 {
			break
		}
		key := [2]int{pair[0], pair[1]}
		if seen[key] {
			continue
		}
		seen[key] = true
		b.edges = append(b.edges, protoEdge{
			from: h + pair[0], to: h + pair[1],
			wLo: 0.05, wHi: 0.2, factor: facMsg,
		})
	}
	return b
}

// buildLayered grows an ALFRED-style layered architecture: four strictly
// ranked layers, criticality and replication increasing toward the bottom
// (the kernel layer everything rests on), influence flowing from each
// provider layer to its consumers above, plus intra-layer neighbour
// coupling. Components carry the richest per-component fault trees of the
// four families.
func buildLayered(g *genEnv, n int) build {
	rng := g.shape()
	sizes := []int{n * 20 / 100, n * 30 / 100, n * 30 / 100}
	for i := range sizes {
		if sizes[i] < 1 {
			sizes[i] = 1
		}
	}
	rest := n - sizes[0] - sizes[1] - sizes[2]
	if rest < 1 {
		rest = 1
	}
	sizes = append(sizes, rest)

	type layerSpec struct {
		tag            string
		critLo, critHi float64
		fts            []int
		ctScale        float64
	}
	layers := []layerSpec{
		{"ui", 1, 5, []int{1}, 1.4},
		{"app", 4, 9, []int{1, 2}, 1.2},
		{"mw", 8, 14, []int{2}, 0.8},
		{"kern", 14, 20, []int{2, 3}, 0.6},
	}
	var b build
	layerOf := make([][]int, len(layers))
	for l, ls := range layers {
		for k := 0; k < sizes[l]; k++ {
			idx := len(b.protos)
			layerOf[l] = append(layerOf[l], idx)
			b.protos = append(b.protos, protoProcess{
				name:    fmt.Sprintf("%s-%02d", ls.tag, k),
				critLo:  ls.critLo,
				critHi:  ls.critHi,
				fts:     ls.fts,
				ctScale: ls.ctScale,
				// ALFRED-style component fault trees: deeper below.
				tasksLo: 1 + l/2, tasksHi: 2 + l/2,
				procsLo: 1, procsHi: 2 + l,
			})
		}
	}
	// Provider edges: every component in layer l (a consumer) binds to
	// one or two providers in layer l+1; a provider fault propagates up
	// the binding.
	for l := 0; l+1 < len(layers); l++ {
		below := layerOf[l+1]
		for _, consumer := range layerOf[l] {
			k := 1 + rng.IntN(2)
			for _, j := range pickDistinct(rng, len(below), k, -1) {
				b.edges = append(b.edges, protoEdge{
					from: below[j], to: consumer,
					wLo: 0.3, wHi: 0.7, factor: facParam,
				})
			}
		}
	}
	// Intra-layer neighbour coupling (shared middleware state, sibling
	// services).
	for _, members := range layerOf {
		for k := 0; k+1 < len(members); k++ {
			if rng.Float64() < 0.6 {
				b.edges = append(b.edges, protoEdge{
					from: members[k], to: members[k+1],
					wLo: 0.1, wHi: 0.3, factor: facShm,
				})
			}
		}
	}
	return b
}

// buildSensorVoter grows the sensor/voter redundancy pattern: groups of
// three sensors feeding a voter feeding an actuator, every voter
// reporting into a shared health monitor, remaining processes becoming
// low-criticality loggers fed by the monitor.
func buildSensorVoter(g *genEnv, n int) build {
	// The redundancy pattern is fully structural: no topology randomness,
	// all variation comes from the per-element attribute substreams.
	groups := (n - 1) / 5
	if groups < 1 {
		groups = 1
	}
	var b build
	for gi := 0; gi < groups; gi++ {
		base := len(b.protos)
		for s := 0; s < 3; s++ {
			b.protos = append(b.protos, protoProcess{
				name:   fmt.Sprintf("g%02d-sense%d", gi, s),
				critLo: 2, critHi: 6, fts: []int{1}, ctScale: 0.8,
			})
		}
		voter := len(b.protos)
		b.protos = append(b.protos, protoProcess{
			name:   fmt.Sprintf("g%02d-vote", gi),
			critLo: 12, critHi: 18, fts: []int{2, 3}, ctScale: 0.5,
		})
		act := len(b.protos)
		b.protos = append(b.protos, protoProcess{
			name:   fmt.Sprintf("g%02d-act", gi),
			critLo: 10, critHi: 16, fts: []int{2}, ctScale: 0.9,
		})
		for s := 0; s < 3; s++ {
			b.edges = append(b.edges, protoEdge{
				from: base + s, to: voter,
				wLo: 0.4, wHi: 0.7, factor: facMsg,
			})
		}
		b.edges = append(b.edges, protoEdge{
			from: voter, to: act,
			wLo: 0.5, wHi: 0.8, factor: facTiming,
		})
	}
	monitor := len(b.protos)
	b.protos = append(b.protos, protoProcess{
		name:   "health-mon",
		critLo: 6, critHi: 10, fts: []int{2}, ctScale: 0.7,
	})
	for gi := 0; gi < groups; gi++ {
		b.edges = append(b.edges, protoEdge{
			from: gi*5 + 3, to: monitor, // the group's voter
			wLo: 0.05, wHi: 0.2, factor: facMsg,
		})
	}
	// Fill the remainder with loggers the monitor feeds.
	for k := len(b.protos); k < n; k++ {
		idx := len(b.protos)
		b.protos = append(b.protos, protoProcess{
			name:   fmt.Sprintf("log-%02d", idx-monitor-1),
			critLo: 1, critHi: 3, fts: []int{1}, ctScale: 1.6,
		})
		b.edges = append(b.edges, protoEdge{
			from: monitor, to: idx,
			wLo: 0.1, wHi: 0.3, factor: facRes,
		})
	}
	return b
}
