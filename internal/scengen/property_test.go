package scengen_test

import (
	"math"
	"testing"

	depint "repro"
	"repro/internal/scengen"
)

// TestGeneratedScenariosAlwaysIntegrate is the generator's load-bearing
// property: across 100 seeds per family the generated system passes spec
// validation (finite values, weights in range), its hierarchy builds
// (acyclic, R1/R2), and the full pipeline integrates without error. Sizes
// cycle so each family is exercised at several structural grains.
func TestGeneratedScenariosAlwaysIntegrate(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping 100-seed property sweep")
	}
	sizes := []int{8, 12, 20, 36}
	for _, fam := range scengen.Families() {
		fam := fam
		t.Run(string(fam), func(t *testing.T) {
			t.Parallel()
			for seed := uint64(0); seed < 100; seed++ {
				n := sizes[int(seed)%len(sizes)]
				sc, err := scengen.Generate(scengen.Config{
					Family: fam, Processes: n, Seed: seed,
				})
				if err != nil {
					t.Fatalf("seed %d n=%d: Generate: %v", seed, n, err)
				}
				checkScenario(t, sc, seed, n)
			}
		})
	}
}

func checkScenario(t *testing.T, sc *scengen.Scenario, seed uint64, n int) {
	t.Helper()
	sys := sc.System
	if err := sys.Validate(); err != nil {
		t.Fatalf("seed %d n=%d: Validate: %v", seed, n, err)
	}
	for _, p := range sys.Processes {
		for name, v := range map[string]float64{
			"criticality": p.Criticality, "est": p.EST, "tcd": p.TCD, "ct": p.CT,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("seed %d: %s.%s = %g", seed, p.Name, name, v)
			}
		}
		if p.Criticality <= 0 {
			t.Fatalf("seed %d: %s criticality %g", seed, p.Name, p.Criticality)
		}
		if p.FT < 1 || p.FT > 3 {
			t.Fatalf("seed %d: %s FT %d", seed, p.Name, p.FT)
		}
	}
	for _, e := range sys.Influences {
		if e.Weight <= 0 || e.Weight > 1 {
			t.Fatalf("seed %d: edge %s->%s weight %g outside (0,1]", seed, e.From, e.To, e.Weight)
		}
		if len(e.Factors) == 0 {
			t.Fatalf("seed %d: edge %s->%s has no factors", seed, e.From, e.To)
		}
	}
	if _, err := sc.Hierarchy.Build(); err != nil {
		t.Fatalf("seed %d n=%d: hierarchy Build: %v", seed, n, err)
	}
	res, err := depint.Integrate(sys)
	if err != nil {
		t.Fatalf("seed %d n=%d: Integrate: %v", seed, n, err)
	}
	if len(res.Assignment) == 0 {
		t.Fatalf("seed %d n=%d: empty assignment", seed, n)
	}
}
