// Package scengen is the framework's workload source: a seeded,
// deterministic generator of realistic integration scenarios at
// parameterized scale. One worked example (p1..p8) cannot exercise the
// FCM/criticality/influence model; scengen produces whole families of
// system specifications — automotive/avionics-style criticality ladders,
// microservice meshes with hub nodes, ALFRED-style layered architectures
// with per-component fault trees, and sensor/voter redundancy patterns —
// each a valid spec.System (plus an FCM hierarchy) that Integrate accepts
// without error.
//
// # Determinism contract
//
// Generation follows the same splitmix64/PCG substream discipline as the
// fault-injection campaigns: every generated element (a process's
// attribute tuple, an edge's weight, a component's fault tree) draws from
// its own PCG substream derived from (seed, element index), never from a
// shared stream, so the output does not depend on the order elements are
// filled in. Attribute synthesis shards across Config.Workers goroutines
// and the encoded scenario is byte-identical at every worker count — the
// property cmd/scenariocheck and the determinism suite pin.
//
// # Feasibility by construction
//
// Generated timing triples satisfy a schedulability invariant: every
// EST lies in [0, B], every window TCD−EST is at least 2B, and the CTs of
// a whole scenario sum to at most B (B = timingBudget). Under the
// processor-demand criterion any subset of such jobs is feasible on one
// processor, so condensation can always reach the HW node count and
// Integrate never fails on a generated scenario — the property the
// 100-seed suite in property_test.go proves per family.
package scengen

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand/v2"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/spec"
)

// Family names a scenario topology family.
type Family string

// The four generator families.
const (
	// Ladder is an automotive/avionics-style criticality ladder: a small
	// safety tier (TMR/duplex) above control, operational and monitoring
	// tiers, with influence flowing up the ladder from the functions that
	// feed the critical ones.
	Ladder Family = "ladder"
	// Mesh is a microservice mesh: a few high-degree hub services the
	// leaf services call into, hub-to-hub backbone edges, and sparse
	// leaf-to-leaf chatter.
	Mesh Family = "mesh"
	// Layered is an ALFRED-style layered architecture: strictly ranked
	// layers with the most critical components at the bottom, influence
	// propagating from each layer to the one above it, and a
	// per-component fault tree (tasks/procedures) on every component.
	Layered Family = "layered"
	// SensorVoter is the failure-mode-reasoning redundancy pattern:
	// groups of redundant sensors feeding a voter feeding an actuator,
	// plus a shared health monitor every voter reports into.
	SensorVoter Family = "sensor-voter"
)

// Families returns all generator families in a fixed order.
func Families() []Family { return []Family{Ladder, Mesh, Layered, SensorVoter} }

// Size presets accepted by Parse and the -gen CLI syntax.
const (
	SizeSmall  = "small"
	SizeMedium = "medium"
	SizeLarge  = "large"
)

// SizeProcesses maps a size preset to its target process count.
func SizeProcesses(size string) (int, error) {
	switch size {
	case SizeSmall:
		return 12, nil
	case SizeMedium:
		return 36, nil
	case SizeLarge:
		return 120, nil
	}
	n, err := strconv.Atoi(size)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("%w: size %q (want small, medium, large or a process count)", ErrBadConfig, size)
	}
	return n, nil
}

// Errors returned by configuration parsing and validation.
var (
	ErrBadConfig = errors.New("scengen: invalid configuration")
	ErrBadFamily = errors.New("scengen: unknown family")
)

// Config parameterizes one generated scenario.
type Config struct {
	// Family selects the topology family.
	Family Family
	// Processes is the target process count; families round it to their
	// structural grain (the sensor-voter family to whole groups), so the
	// generated system may differ by a few processes. 0 means small.
	Processes int
	// Seed makes generation reproducible: the same (Family, Processes,
	// Seed) always produces a byte-identical scenario.
	Seed uint64
	// Workers shards attribute/edge/hierarchy synthesis across
	// goroutines (0 = GOMAXPROCS). Every element draws from its own
	// substream, so the output is byte-identical at every worker count.
	Workers int
	// HWNodes overrides the generated platform size (0 = family default,
	// roughly a third of the process count and always strictly above the
	// largest replication degree).
	HWNodes int
	// Name overrides the generated system name (default
	// "<family>-n<processes>-s<seed>").
	Name string
}

// Scenario is one generated integration problem: the system specification
// the pipeline consumes plus the FCM hierarchy (per-component fault
// trees) behind its processes.
type Scenario struct {
	Config    Config
	System    *spec.System
	Hierarchy *spec.HierarchySpec
}

// Parse decodes the CLI scenario syntax "family:size:seed", e.g.
// "ladder:small:7" or "mesh:48:1998". Size is a preset name or a process
// count; seed is a non-negative integer.
func Parse(s string) (Config, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return Config{}, fmt.Errorf("%w: %q (want family:size:seed)", ErrBadConfig, s)
	}
	fam := Family(strings.TrimSpace(parts[0]))
	if !knownFamily(fam) {
		return Config{}, fmt.Errorf("%w: %q (families: %s)", ErrBadFamily, parts[0], familyList())
	}
	n, err := SizeProcesses(strings.TrimSpace(parts[1]))
	if err != nil {
		return Config{}, err
	}
	seed, err := strconv.ParseUint(strings.TrimSpace(parts[2]), 10, 64)
	if err != nil {
		return Config{}, fmt.Errorf("%w: seed %q", ErrBadConfig, parts[2])
	}
	return Config{Family: fam, Processes: n, Seed: seed}, nil
}

func knownFamily(f Family) bool {
	for _, k := range Families() {
		if k == f {
			return true
		}
	}
	return false
}

func familyList() string {
	names := make([]string, 0, 4)
	for _, f := range Families() {
		names = append(names, string(f))
	}
	return strings.Join(names, ", ")
}

// timingBudget is B in the schedulability invariant: ΣCT ≤ B, EST ∈
// [0, B], window ≥ 2B. Any subset of such jobs passes the
// processor-demand criterion, so every generated colocation is feasible.
const timingBudget = 100.0

// substreamSalt decorrelates the two PCG seed words of a substream — the
// same constant the fault-injection campaigns use, keeping one substream
// convention across the repo.
const substreamSalt = 0xda942042e4dd58b5

// Stream salts: one per draw class, so the substream of (say) process 3's
// attributes never collides with the substream of edge 3's weight.
const (
	saltShape uint64 = 0x5ca1ab1e0ddba11
	saltAttr  uint64 = 0xbadc0ffee0ddf00d
	saltEdge  uint64 = 0x1ce1ce1ce1ce1ce
	saltHier  uint64 = 0xf1a7f00d5eed5eed
)

// splitmix64 is the SplitMix64 finalizer (a bijection, so distinct
// elements never collide on a substream) — the standard mixer the
// campaign worker pool derives its per-trial streams from.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// genEnv carries the seed material of one generation run.
type genEnv struct {
	base    uint64 // family-folded master seed
	workers int
}

func newGenEnv(cfg Config) *genEnv {
	h := fnv.New64a()
	h.Write([]byte(cfg.Family))
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &genEnv{base: splitmix64(cfg.Seed) ^ h.Sum64(), workers: workers}
}

// at returns the private substream of element i within draw class salt.
// The substream depends only on (seed, family, salt, i) — never on which
// goroutine fills the element or in which order — which is what makes
// sharded generation byte-identical at every worker count.
func (g *genEnv) at(salt uint64, i int) *rand.Rand {
	b := splitmix64(g.base^salt) + uint64(i)
	return rand.New(rand.NewPCG(splitmix64(b), splitmix64(b^substreamSalt)))
}

// shape returns the serial topology stream: the one stream family
// builders may consume sequentially (tier sizes, edge targets), because
// topology construction is inherently ordered and never sharded.
func (g *genEnv) shape() *rand.Rand { return g.at(saltShape, 0) }

// protoProcess is a process the family builder has placed topologically
// but whose concrete attributes are still to be drawn.
type protoProcess struct {
	name           string
	critLo, critHi float64 // criticality range of the role
	fts            []int   // candidate replication degrees
	ctScale        float64 // relative computation weight (1 = average)
	// fault-tree shape: tasks in [tasksLo, tasksHi], procedures per task
	// in [procsLo, procsHi].
	tasksLo, tasksHi int
	procsLo, procsHi int
}

// protoEdge is an influence edge with its weight still to be drawn.
type protoEdge struct {
	from, to int
	wLo, wHi float64
	factor   string
}

// build is a family builder's output: the topology skeleton plus the
// family's HW sizing hint.
type build struct {
	protos  []protoProcess
	edges   []protoEdge
	hwNodes int // 0 = shared default
}

// Generate produces one scenario. The same Config (ignoring Workers)
// always yields a byte-identical scenario; an invalid Config is an error.
func Generate(cfg Config) (*Scenario, error) {
	if !knownFamily(cfg.Family) {
		return nil, fmt.Errorf("%w: %q (families: %s)", ErrBadFamily, cfg.Family, familyList())
	}
	if cfg.Processes == 0 {
		cfg.Processes, _ = SizeProcesses(SizeSmall)
	}
	if cfg.Processes < 4 {
		return nil, fmt.Errorf("%w: %d processes (families need at least 4)", ErrBadConfig, cfg.Processes)
	}
	if cfg.Processes > 100000 {
		return nil, fmt.Errorf("%w: %d processes (cap is 100000)", ErrBadConfig, cfg.Processes)
	}
	env := newGenEnv(cfg)

	var b build
	switch cfg.Family {
	case Ladder:
		b = buildLadder(env, cfg.Processes)
	case Mesh:
		b = buildMesh(env, cfg.Processes)
	case Layered:
		b = buildLayered(env, cfg.Processes)
	case SensorVoter:
		b = buildSensorVoter(env, cfg.Processes)
	}

	procs := env.fillProcesses(b.protos)
	infl := env.fillEdges(b.edges, procs)
	hier := env.fillHierarchy(b.protos, procs)

	maxFT := 1
	for _, p := range procs {
		if p.FT > maxFT {
			maxFT = p.FT
		}
	}
	hw := cfg.HWNodes
	if hw == 0 {
		hw = b.hwNodes
	}
	if hw == 0 {
		hw = len(procs) / 3
	}
	// The platform must out-size the largest replica group (replicas may
	// never colocate) and never out-size the cluster supply.
	if hw <= maxFT {
		hw = maxFT + 1
	}
	if hw > len(procs) {
		hw = len(procs)
	}

	name := cfg.Name
	if name == "" {
		name = fmt.Sprintf("%s-n%d-s%d", cfg.Family, len(procs), cfg.Seed)
	}
	sys := &spec.System{Name: name, Processes: procs, Influences: infl, HWNodes: hw}
	if err := sys.Validate(); err != nil {
		// Unreachable by construction; surfaced rather than trusted.
		return nil, fmt.Errorf("scengen: generated system invalid: %w", err)
	}
	hier.Name = name + "-hierarchy"
	return &Scenario{Config: cfg, System: sys, Hierarchy: hier}, nil
}

// fillProcesses draws the concrete attribute tuples, sharding the
// per-process substream draws over the worker pool, then applies the
// serial timing normalization that establishes the schedulability
// invariant (ΣCT ≤ 0.9·B after rounding, EST ∈ [0, B], window ≥ 2B).
func (g *genEnv) fillProcesses(protos []protoProcess) []spec.Process {
	n := len(protos)
	procs := make([]spec.Process, n)
	rawCT := make([]float64, n)
	estU := make([]float64, n)
	winU := make([]float64, n)
	g.shard(n, func(i int) {
		rng := g.at(saltAttr, i)
		p := protos[i]
		// Fixed draw order per element: criticality, FT, CT, EST, window.
		procs[i].Name = p.name
		procs[i].Criticality = round1(p.critLo + rng.Float64()*(p.critHi-p.critLo))
		procs[i].FT = p.fts[rng.IntN(len(p.fts))]
		scale := p.ctScale
		if scale <= 0 {
			scale = 1
		}
		rawCT[i] = scale * (0.5 + rng.Float64())
		estU[i] = rng.Float64()
		winU[i] = rng.Float64()
	})
	sum := 0.0
	for _, v := range rawCT {
		sum += v
	}
	scale := 0.9 * timingBudget / sum
	for i := range procs {
		procs[i].CT = floor3(rawCT[i] * scale)
		procs[i].EST = round3(timingBudget * estU[i])
		procs[i].TCD = procs[i].EST + 2*timingBudget + round3(timingBudget*winU[i])
	}
	return procs
}

// fillEdges draws edge weights on per-edge substreams, sharded.
func (g *genEnv) fillEdges(edges []protoEdge, procs []spec.Process) []spec.Influence {
	infl := make([]spec.Influence, len(edges))
	g.shard(len(edges), func(j int) {
		rng := g.at(saltEdge, j)
		e := edges[j]
		w := round3(e.wLo + rng.Float64()*(e.wHi-e.wLo))
		if w < 0.01 {
			w = 0.01
		}
		if w > 1 {
			w = 1
		}
		infl[j] = spec.Influence{
			From:    procs[e.from].Name,
			To:      procs[e.to].Name,
			Weight:  w,
			Factors: []string{e.factor},
		}
	})
	return infl
}

// fillHierarchy grows the per-component fault tree of every process —
// tasks under the process, procedures (the basic events) under each task
// — on the process's private hierarchy substream.
func (g *genEnv) fillHierarchy(protos []protoProcess, procs []spec.Process) *spec.HierarchySpec {
	pss := make([]spec.ProcessSpec, len(protos))
	g.shard(len(protos), func(i int) {
		rng := g.at(saltHier, i)
		p := protos[i]
		tLo, tHi := p.tasksLo, p.tasksHi
		if tLo < 1 {
			tLo, tHi = 1, 2
		}
		tasks := make([]spec.TaskSpec, tLo+rng.IntN(tHi-tLo+1))
		for t := range tasks {
			pLo, pHi := p.procsLo, p.procsHi
			if pLo < 1 {
				pLo, pHi = 1, 3
			}
			fns := make([]spec.ProcedureSpec, pLo+rng.IntN(pHi-pLo+1))
			for f := range fns {
				fns[f] = spec.ProcedureSpec{
					Name:      fmt.Sprintf("%s/t%d/f%d", p.name, t, f),
					Stateless: rng.Float64() < 0.5,
				}
			}
			tasks[t] = spec.TaskSpec{Name: fmt.Sprintf("%s/t%d", p.name, t), Procedures: fns}
		}
		pss[i] = spec.ProcessSpec{Name: p.name, Criticality: procs[i].Criticality, Tasks: tasks}
	})
	return &spec.HierarchySpec{Processes: pss}
}

// shard runs fn(i) for i in [0, n) across the worker pool in contiguous
// index blocks. Each element only touches its own slice slot and its own
// substream, so the result is independent of the sharding.
func (g *genEnv) shard(n int, fn func(i int)) {
	workers := g.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	per := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * per
		hi := lo + per
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// pickDistinct draws up to k distinct values from [0, n) excluding self,
// using the serial shape stream. Fewer than k come back when n is small.
func pickDistinct(rng *rand.Rand, n, k, self int) []int {
	if n <= 1 {
		return nil
	}
	seen := map[int]bool{self: true}
	out := make([]int, 0, k)
	for attempts := 0; len(out) < k && attempts < 8*k; attempts++ {
		v := rng.IntN(n)
		if seen[v] {
			continue
		}
		seen[v] = true
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

func round1(v float64) float64 { return math.Round(v*10) / 10 }
func round3(v float64) float64 { return math.Round(v*1000) / 1000 }
func floor3(v float64) float64 { return math.Floor(v*1000) / 1000 }
