package scengen

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// encodeScenario renders the scenario to the exact bytes the corpus
// stores: the spec JSON followed by the hierarchy JSON.
func encodeScenario(t *testing.T, sc *Scenario) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := sc.System.Encode(&buf); err != nil {
		t.Fatalf("encode system: %v", err)
	}
	if err := sc.Hierarchy.Encode(&buf); err != nil {
		t.Fatalf("encode hierarchy: %v", err)
	}
	return buf.Bytes()
}

func TestGenerateDeterministicAcrossRunsAndWorkers(t *testing.T) {
	for _, fam := range Families() {
		fam := fam
		t.Run(string(fam), func(t *testing.T) {
			t.Parallel()
			var ref []byte
			for _, workers := range []int{1, 4, 1, 7} {
				sc, err := Generate(Config{Family: fam, Processes: 36, Seed: 1998, Workers: workers})
				if err != nil {
					t.Fatalf("Generate(workers=%d): %v", workers, err)
				}
				got := encodeScenario(t, sc)
				if ref == nil {
					ref = got
					continue
				}
				if !bytes.Equal(ref, got) {
					t.Fatalf("workers=%d: scenario bytes differ from workers=1", workers)
				}
			}
		})
	}
}

func TestGenerateSeedSensitivity(t *testing.T) {
	a, err := Generate(Config{Family: Mesh, Processes: 24, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{Family: Mesh, Processes: 24, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(encodeScenario(t, a), encodeScenario(t, b)) {
		t.Fatal("different seeds produced identical scenarios")
	}
}

func TestGenerateFamiliesDiffer(t *testing.T) {
	seen := map[string]Family{}
	for _, fam := range Families() {
		sc, err := Generate(Config{Family: fam, Processes: 20, Seed: 7})
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		key := string(encodeScenario(t, sc))
		if prev, dup := seen[key]; dup {
			t.Fatalf("families %s and %s generated identical scenarios", prev, fam)
		}
		seen[key] = fam
	}
}

func TestGenerateHWAboveMaxFT(t *testing.T) {
	for _, fam := range Families() {
		sc, err := Generate(Config{Family: fam, Processes: 12, Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		maxFT := 1
		for _, p := range sc.System.Processes {
			if p.FT > maxFT {
				maxFT = p.FT
			}
		}
		if sc.System.HWNodes <= maxFT {
			t.Fatalf("%s: hw_nodes %d must exceed max FT %d (replica separation)",
				fam, sc.System.HWNodes, maxFT)
		}
	}
}

func TestGenerateTimingInvariant(t *testing.T) {
	for _, fam := range Families() {
		sc, err := Generate(Config{Family: fam, Processes: 36, Seed: 11})
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		sum := 0.0
		for _, p := range sc.System.Processes {
			sum += p.CT
			if p.EST < 0 || p.EST > timingBudget {
				t.Fatalf("%s/%s: EST %g outside [0, %g]", fam, p.Name, p.EST, timingBudget)
			}
			if p.TCD-p.EST < 2*timingBudget {
				t.Fatalf("%s/%s: window %g below 2B", fam, p.Name, p.TCD-p.EST)
			}
		}
		if sum > timingBudget {
			t.Fatalf("%s: ΣCT = %g exceeds budget %g", fam, sum, timingBudget)
		}
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want Config
	}{
		{"ladder:small:7", Config{Family: Ladder, Processes: 12, Seed: 7}},
		{"mesh:medium:1998", Config{Family: Mesh, Processes: 36, Seed: 1998}},
		{"layered:large:0", Config{Family: Layered, Processes: 120, Seed: 0}},
		{"sensor-voter:48:5", Config{Family: SensorVoter, Processes: 48, Seed: 5}},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Fatalf("Parse(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		in   string
		want error
	}{
		{"ladder:small", ErrBadConfig},
		{"ring:small:1", ErrBadFamily},
		{"mesh:tiny:1", ErrBadConfig},
		{"mesh:small:-1", ErrBadConfig},
		{"mesh:small:x", ErrBadConfig},
	}
	for _, c := range cases {
		_, err := Parse(c.in)
		if !errors.Is(err, c.want) {
			t.Fatalf("Parse(%q) error = %v, want %v", c.in, err, c.want)
		}
	}
}

func TestGenerateConfigErrors(t *testing.T) {
	if _, err := Generate(Config{Family: "ring"}); !errors.Is(err, ErrBadFamily) {
		t.Fatalf("unknown family error = %v", err)
	}
	if _, err := Generate(Config{Family: Ladder, Processes: 2}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("too-small error = %v", err)
	}
	if _, err := Generate(Config{Family: Ladder, Processes: 1 << 20}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("too-large error = %v", err)
	}
}

func TestGenerateDefaultsAndName(t *testing.T) {
	sc, err := Generate(Config{Family: Ladder, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(sc.System.Processes); n != 12 {
		t.Fatalf("default size = %d processes, want 12 (small)", n)
	}
	if !strings.HasPrefix(sc.System.Name, "ladder-n12-s9") {
		t.Fatalf("generated name %q", sc.System.Name)
	}
	if sc.Hierarchy.Name != sc.System.Name+"-hierarchy" {
		t.Fatalf("hierarchy name %q", sc.Hierarchy.Name)
	}

	named, err := Generate(Config{Family: Ladder, Seed: 9, Name: "custom"})
	if err != nil {
		t.Fatal(err)
	}
	if named.System.Name != "custom" {
		t.Fatalf("name override = %q", named.System.Name)
	}
}

func TestHierarchyMatchesProcesses(t *testing.T) {
	sc, err := Generate(Config{Family: Layered, Processes: 24, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(sc.Hierarchy.Processes), len(sc.System.Processes); got != want {
		t.Fatalf("hierarchy has %d processes, system %d", got, want)
	}
	for i, ps := range sc.Hierarchy.Processes {
		p := sc.System.Processes[i]
		if ps.Name != p.Name {
			t.Fatalf("hierarchy[%d] = %q, system %q", i, ps.Name, p.Name)
		}
		if ps.Criticality != p.Criticality {
			t.Fatalf("%s: hierarchy criticality %g, system %g", p.Name, ps.Criticality, p.Criticality)
		}
		if len(ps.Tasks) == 0 {
			t.Fatalf("%s: no tasks", p.Name)
		}
	}
	if _, err := sc.Hierarchy.Build(); err != nil {
		t.Fatalf("hierarchy does not build: %v", err)
	}
}

func TestPickDistinct(t *testing.T) {
	rng := (&genEnv{base: 42, workers: 1}).shape()
	for trial := 0; trial < 50; trial++ {
		out := pickDistinct(rng, 10, 3, 4)
		if len(out) != 3 {
			t.Fatalf("got %d values, want 3", len(out))
		}
		seen := map[int]bool{}
		for i, v := range out {
			if v < 0 || v >= 10 || v == 4 || seen[v] {
				t.Fatalf("bad draw %v", out)
			}
			seen[v] = true
			if i > 0 && out[i-1] >= v {
				t.Fatalf("unsorted draw %v", out)
			}
		}
	}
	if out := pickDistinct(rng, 1, 3, -1); out != nil {
		t.Fatalf("n=1 should yield nil, got %v", out)
	}
}
