package sched

import (
	"math"
	"testing"
)

// FuzzFeasibleSimulateAgreement cross-checks the exact processor-demand
// criterion against preemptive EDF simulation on fuzzer-generated job
// sets: EDF is optimal for independent jobs with release times and
// deadlines on one processor, so the two must always agree.
func FuzzFeasibleSimulateAgreement(f *testing.F) {
	f.Add(int64(0), int64(5), int64(3), int64(3), int64(6), int64(4))
	f.Add(int64(0), int64(20), int64(5), int64(8), int64(16), int64(5))
	f.Fuzz(func(t *testing.T, e1, d1, c1, e2, d2, c2 int64) {
		mk := func(name string, e, d, c int64) (Job, bool) {
			est := float64(abs64(e) % 50)
			window := float64(abs64(d)%30) + 1
			ct := float64(abs64(c) % 32)
			if ct > window {
				return Job{}, false
			}
			return Job{Name: name, EST: est, TCD: est + window, CT: ct}, true
		}
		j1, ok1 := mk("a", e1, d1, c1)
		j2, ok2 := mk("b", e2, d2, c2)
		if !ok1 || !ok2 {
			return
		}
		jobs := []Job{j1, j2}
		feasible, _, err := Feasible(jobs)
		if err != nil {
			t.Fatalf("valid jobs rejected: %v", err)
		}
		sim, err := Simulate(jobs, PreemptiveEDF)
		if err != nil {
			t.Fatalf("simulate: %v", err)
		}
		if feasible != sim.AllMet() {
			t.Fatalf("criterion %v vs EDF %v for %v and %v (misses %v)",
				feasible, sim.AllMet(), j1, j2, sim.Misses())
		}
	})
}

func abs64(x int64) int64 {
	if x == math.MinInt64 {
		return math.MaxInt64
	}
	if x < 0 {
		return -x
	}
	return x
}
