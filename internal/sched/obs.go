package sched

import (
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// instruments caches the oracle's metric handles so the hot path pays one
// atomic pointer load when uninstrumented and no registry lookups when
// instrumented.
type instruments struct {
	calls      *obs.Counter
	feasible   *obs.Counter
	infeasible *obs.Counter
	duration   *obs.Histogram
}

var instr atomic.Pointer[instruments]

// Observe installs feasibility-oracle instrumentation into the given
// registry: call counters (total / feasible / infeasible) and a latency
// histogram. The installation is process-global — the oracle is a pure
// function called from deep inside the condensation loops, so the registry
// travels via this side channel rather than through every call site. Pass
// nil to uninstall. Concurrent Observe calls are safe; the last one wins.
func Observe(reg *obs.Registry) {
	if reg == nil {
		instr.Store(nil)
		return
	}
	instr.Store(&instruments{
		calls:      reg.Counter("sched_feasible_calls_total", "feasibility-oracle invocations"),
		feasible:   reg.Counter("sched_feasible_verdicts_total", "feasible verdicts returned"),
		infeasible: reg.Counter("sched_infeasible_verdicts_total", "infeasible verdicts returned"),
		duration:   reg.Histogram("sched_feasible_seconds", "feasibility-oracle latency", obs.DurationBuckets),
	})
}

// record books one oracle call. No-op when uninstrumented.
func record(start time.Time, ok bool, observed bool) {
	in := instr.Load()
	if in == nil {
		return
	}
	in.calls.Inc()
	if ok {
		in.feasible.Inc()
	} else {
		in.infeasible.Inc()
	}
	if observed {
		in.duration.ObserveDuration(time.Since(start))
	}
}

// observedNow returns the current time only when instrumentation is
// installed, so the uninstrumented path never calls time.Now.
func observedNow() (time.Time, bool) {
	if instr.Load() == nil {
		return time.Time{}, false
	}
	return time.Now(), true
}
