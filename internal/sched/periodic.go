package sched

import (
	"fmt"
	"math"
	"sort"
)

// Periodic is a periodic task for the classical schedulability analyses
// the paper leans on ("Several well-known scheduling algorithms can be
// used to check the feasibility of scheduling sets of these processes on
// the same processor", citing Stankovic et al., "Implications of Classical
// Scheduling Results for Real-Time Systems").
type Periodic struct {
	Name   string
	Period float64
	CT     float64
	// Deadline relative to release; 0 means implicit (= Period).
	Deadline float64
}

// RelDeadline returns the effective relative deadline.
func (p Periodic) RelDeadline() float64 {
	if p.Deadline > 0 {
		return p.Deadline
	}
	return p.Period
}

// Validate checks the task's consistency.
func (p Periodic) Validate() error {
	switch {
	case p.Period <= 0:
		return fmt.Errorf("%w: %s period %g", ErrBadJob, p.Name, p.Period)
	case p.CT < 0:
		return fmt.Errorf("%w: %s CT %g", ErrBadJob, p.Name, p.CT)
	case p.CT > p.RelDeadline():
		return fmt.Errorf("%w: %s CT %g exceeds deadline %g", ErrBadJob, p.Name, p.CT, p.RelDeadline())
	}
	return nil
}

// PeriodicUtilization returns Σ CT_i / T_i.
func PeriodicUtilization(ps []Periodic) float64 {
	u := 0.0
	for _, p := range ps {
		if p.Period > 0 {
			u += p.CT / p.Period
		}
	}
	return u
}

// EDFSchedulable decides EDF schedulability of a periodic task set on one
// processor. For implicit deadlines the utilization bound U ≤ 1 is exact;
// for constrained deadlines (D < T) the density test Σ CT/D ≤ 1 is used,
// which is sufficient but not necessary — the second return value reports
// whether the verdict is exact.
func EDFSchedulable(ps []Periodic) (ok, exact bool, err error) {
	implicit := true
	for _, p := range ps {
		if verr := p.Validate(); verr != nil {
			return false, false, verr
		}
		if p.RelDeadline() < p.Period {
			implicit = false
		}
	}
	if implicit {
		return PeriodicUtilization(ps) <= 1+1e-12, true, nil
	}
	density := 0.0
	for _, p := range ps {
		density += p.CT / p.RelDeadline()
	}
	if density <= 1+1e-12 {
		return true, false, nil
	}
	// Density exceeded: fall back to utilization necessity.
	if PeriodicUtilization(ps) > 1+1e-12 {
		return false, true, nil // over unit utilization: definitely not
	}
	return false, false, nil
}

// LiuLaylandBound returns the rate-monotonic utilization bound
// n(2^{1/n} − 1).
func LiuLaylandBound(n int) float64 {
	if n <= 0 {
		return 0
	}
	return float64(n) * (math.Pow(2, 1/float64(n)) - 1)
}

// RMSchedulable decides rate-monotonic schedulability on one processor
// for constrained-deadline periodic tasks: first the Liu–Layland
// sufficient bound (implicit deadlines only), then exact response-time
// analysis. The returned map holds the worst-case response time of each
// task (present when analysis ran to completion).
func RMSchedulable(ps []Periodic) (bool, map[string]float64, error) {
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			return false, nil, err
		}
	}
	if len(ps) == 0 {
		return true, map[string]float64{}, nil
	}
	implicit := true
	for _, p := range ps {
		if p.RelDeadline() < p.Period {
			implicit = false
		}
	}
	if implicit && PeriodicUtilization(ps) <= LiuLaylandBound(len(ps))+1e-12 {
		// Sufficient bound holds; still compute response times for the
		// caller.
		rts, err := responseTimes(ps)
		if err != nil {
			return false, nil, err
		}
		return true, rts, nil
	}
	rts, err := responseTimes(ps)
	if err != nil {
		return false, nil, err
	}
	for _, p := range ps {
		rt, found := rts[p.Name]
		if !found || rt > p.RelDeadline()+1e-12 {
			return false, rts, nil
		}
	}
	return true, rts, nil
}

// responseTimes runs the standard fixed-point response-time analysis under
// rate-monotonic priorities (shorter period = higher priority; name breaks
// ties). A task whose iteration diverges past its deadline is recorded
// with the diverged value.
func responseTimes(ps []Periodic) (map[string]float64, error) {
	byPrio := append([]Periodic(nil), ps...)
	sort.Slice(byPrio, func(i, j int) bool {
		if byPrio[i].Period != byPrio[j].Period {
			return byPrio[i].Period < byPrio[j].Period
		}
		return byPrio[i].Name < byPrio[j].Name
	})
	out := make(map[string]float64, len(byPrio))
	for i, p := range byPrio {
		r := p.CT
		for iter := 0; iter < 1000; iter++ {
			interference := 0.0
			for _, hp := range byPrio[:i] {
				interference += math.Ceil(r/hp.Period) * hp.CT
			}
			next := p.CT + interference
			if math.Abs(next-r) < 1e-9 {
				break
			}
			r = next
			if r > p.RelDeadline()*4 && r > p.Period*4 {
				break // diverged well past any deadline
			}
		}
		out[p.Name] = r
	}
	return out, nil
}
