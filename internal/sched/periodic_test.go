package sched

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestPeriodicValidate(t *testing.T) {
	tests := []struct {
		name    string
		p       Periodic
		wantErr bool
	}{
		{"ok", Periodic{Name: "a", Period: 10, CT: 3}, false},
		{"constrained", Periodic{Name: "a", Period: 10, CT: 3, Deadline: 5}, false},
		{"zero period", Periodic{Name: "a", CT: 3}, true},
		{"negative ct", Periodic{Name: "a", Period: 10, CT: -1}, true},
		{"ct over deadline", Periodic{Name: "a", Period: 10, CT: 6, Deadline: 5}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.p.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("err = %v, wantErr %v", err, tt.wantErr)
			}
			if err != nil && !errors.Is(err, ErrBadJob) {
				t.Errorf("not wrapping ErrBadJob: %v", err)
			}
		})
	}
}

func TestRelDeadline(t *testing.T) {
	if got := (Periodic{Period: 10}).RelDeadline(); got != 10 {
		t.Errorf("implicit deadline = %g", got)
	}
	if got := (Periodic{Period: 10, Deadline: 4}).RelDeadline(); got != 4 {
		t.Errorf("constrained deadline = %g", got)
	}
}

func TestPeriodicUtilization(t *testing.T) {
	ps := []Periodic{
		{Name: "a", Period: 10, CT: 2},
		{Name: "b", Period: 20, CT: 5},
	}
	if got := PeriodicUtilization(ps); math.Abs(got-0.45) > 1e-12 {
		t.Errorf("U = %g, want 0.45", got)
	}
}

func TestEDFSchedulableImplicitExact(t *testing.T) {
	ok, exact, err := EDFSchedulable([]Periodic{
		{Name: "a", Period: 10, CT: 5},
		{Name: "b", Period: 20, CT: 10},
	})
	if err != nil || !ok || !exact {
		t.Errorf("U=1 exactly: ok=%v exact=%v err=%v", ok, exact, err)
	}
	ok, exact, err = EDFSchedulable([]Periodic{
		{Name: "a", Period: 10, CT: 6},
		{Name: "b", Period: 20, CT: 10},
	})
	if err != nil || ok || !exact {
		t.Errorf("U=1.1: ok=%v exact=%v err=%v", ok, exact, err)
	}
}

func TestEDFSchedulableConstrainedDensity(t *testing.T) {
	// Density 0.5/1 within bound: sufficient verdict, not exact.
	ok, exact, err := EDFSchedulable([]Periodic{
		{Name: "a", Period: 10, CT: 2, Deadline: 5},
	})
	if err != nil || !ok {
		t.Errorf("ok=%v err=%v", ok, err)
	}
	if exact {
		t.Error("density verdict should not claim exactness")
	}
	// Over unit utilization with constrained deadlines: definite no.
	ok, exact, err = EDFSchedulable([]Periodic{
		{Name: "a", Period: 10, CT: 8, Deadline: 9},
		{Name: "b", Period: 10, CT: 4, Deadline: 9},
	})
	if err != nil || ok || !exact {
		t.Errorf("overload: ok=%v exact=%v err=%v", ok, exact, err)
	}
}

func TestEDFSchedulableRejectsInvalid(t *testing.T) {
	if _, _, err := EDFSchedulable([]Periodic{{Name: "x", Period: -1, CT: 1}}); !errors.Is(err, ErrBadJob) {
		t.Errorf("err = %v", err)
	}
}

func TestLiuLaylandBound(t *testing.T) {
	if got := LiuLaylandBound(1); got != 1 {
		t.Errorf("n=1 bound = %g, want 1", got)
	}
	if got := LiuLaylandBound(2); math.Abs(got-0.8284271247) > 1e-9 {
		t.Errorf("n=2 bound = %g", got)
	}
	if got := LiuLaylandBound(0); got != 0 {
		t.Errorf("n=0 bound = %g", got)
	}
	// Monotone decreasing towards ln 2.
	prev := 2.0
	for n := 1; n <= 64; n *= 2 {
		b := LiuLaylandBound(n)
		if b >= prev {
			t.Errorf("bound not decreasing at n=%d", n)
		}
		prev = b
	}
	if prev < math.Ln2-1e-3 {
		t.Errorf("bound fell below ln2: %g", prev)
	}
}

func TestRMSchedulableClassicExample(t *testing.T) {
	// The classic Liu-Layland example: U = 0.2/0.5 split across harmonic-ish
	// periods well under the bound.
	ok, rts, err := RMSchedulable([]Periodic{
		{Name: "fast", Period: 10, CT: 2},
		{Name: "slow", Period: 50, CT: 10},
	})
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if rts["fast"] != 2 {
		t.Errorf("fast response = %g, want 2 (highest priority)", rts["fast"])
	}
	// slow: r = 10 + ceil(r/10)*2; fixpoint r=14 (10+2*2? iterate: r0=10,
	// interference ceil(10/10)*2=2 -> 12; ceil(12/10)*2=4 -> 14;
	// ceil(14/10)*2=4 -> 14).
	if rts["slow"] != 14 {
		t.Errorf("slow response = %g, want 14", rts["slow"])
	}
}

func TestRMSchedulableOverloadFails(t *testing.T) {
	ok, _, err := RMSchedulable([]Periodic{
		{Name: "a", Period: 10, CT: 6},
		{Name: "b", Period: 14, CT: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("U=1.1 task set accepted under RM")
	}
}

func TestRMAboveBoundButSchedulable(t *testing.T) {
	// Harmonic periods schedule up to U=1 under RM, above the Liu-Layland
	// bound — response-time analysis must accept them.
	ps := []Periodic{
		{Name: "a", Period: 10, CT: 5},
		{Name: "b", Period: 20, CT: 10},
	}
	if u := PeriodicUtilization(ps); u <= LiuLaylandBound(2) {
		t.Fatalf("test premise broken: U=%g under bound", u)
	}
	ok, rts, err := RMSchedulable(ps)
	if err != nil || !ok {
		t.Errorf("harmonic set rejected: ok=%v err=%v rts=%v", ok, err, rts)
	}
	if rts["b"] != 20 {
		t.Errorf("b response = %g, want 20", rts["b"])
	}
}

func TestRMEmptySet(t *testing.T) {
	ok, rts, err := RMSchedulable(nil)
	if err != nil || !ok || len(rts) != 0 {
		t.Errorf("empty set: %v %v %v", ok, rts, err)
	}
}

func TestRMNeverAcceptsWhatEDFCannot(t *testing.T) {
	// Property: RM-schedulable (implicit deadlines) implies U <= 1, i.e.
	// EDF-schedulable — RM is never more permissive than EDF.
	f := func(c1, c2, c3 uint8) bool {
		ps := []Periodic{
			{Name: "a", Period: 10, CT: 1 + float64(c1%9)},
			{Name: "b", Period: 25, CT: 1 + float64(c2%24)},
			{Name: "c", Period: 60, CT: 1 + float64(c3%59)},
		}
		rmOK, _, err := RMSchedulable(ps)
		if err != nil {
			return false
		}
		if !rmOK {
			return true
		}
		edfOK, _, err := EDFSchedulable(ps)
		return err == nil && edfOK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
