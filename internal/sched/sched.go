// Package sched provides the scheduling-feasibility oracles the integration
// framework relies on (ICDCS 1998 §6: "Several well-known scheduling
// algorithms can be used to check the feasibility of scheduling sets of
// these processes on the same processor").
//
// The worked example characterises each process by a timing triple
// ⟨EST, TCD, CT⟩ — earliest start time, task completion deadline, and
// computation time — for a single-shot job. Two FCMs may be combined onto
// one processor only if the union of their jobs is feasible there; the
// paper's example is that ⟨0,5,3⟩ and ⟨3,6,4⟩ cannot share a processor.
//
// Feasibility of single-shot jobs with release times and deadlines under
// preemptive scheduling is decided exactly by the processor-demand
// criterion: for every window [s, d) with s an EST and d a TCD, the total
// computation of jobs entirely inside the window must not exceed d − s.
package sched

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Job is a single-shot job with a release time (EST), absolute deadline
// (TCD) and worst-case computation time (CT). CT is also the job's declared
// execution budget.
//
// Actual, when positive, is the job's true computation demand and may
// exceed CT — this models the paper's timing fault ("a task in an infinite
// loop", §3.4.3) with Actual = +Inf. A preemptive runtime enforces the CT
// budget and kills an overrunning job (the containment mechanism of
// ARINC-653-style partitioning in the AIMS system the paper cites); a
// non-preemptive runtime cannot regain control, so the overrun holds the
// processor. Actual = 0 means the job consumes exactly CT.
type Job struct {
	Name   string
	EST    float64
	TCD    float64
	CT     float64
	Actual float64
}

// Demand returns the job's true computation demand (Actual, or CT when
// Actual is unset).
func (j Job) Demand() float64 {
	if j.Actual > 0 {
		return j.Actual
	}
	return j.CT
}

// Window returns the length of the job's feasible window TCD − EST.
func (j Job) Window() float64 { return j.TCD - j.EST }

// Validate checks the job's internal consistency. EST, TCD and CT must be
// finite — the comparisons below are all false for NaN, so NaN is rejected
// explicitly. Actual is NOT constrained: +Inf there legitimately models a
// task stuck in an infinite loop (the paper's R4 discussion).
func (j Job) Validate() error {
	for _, v := range []struct {
		name string
		val  float64
	}{{"EST", j.EST}, {"TCD", j.TCD}, {"CT", j.CT}} {
		if math.IsNaN(v.val) || math.IsInf(v.val, 0) {
			return fmt.Errorf("%w: %s has non-finite %s %g", ErrBadJob, j.Name, v.name, v.val)
		}
	}
	switch {
	case j.CT < 0:
		return fmt.Errorf("%w: %s has CT %g", ErrBadJob, j.Name, j.CT)
	case j.TCD < j.EST:
		return fmt.Errorf("%w: %s has TCD %g before EST %g", ErrBadJob, j.Name, j.TCD, j.EST)
	case j.CT > j.Window():
		return fmt.Errorf("%w: %s needs CT %g in window %g", ErrBadJob, j.Name, j.CT, j.Window())
	}
	return nil
}

// String renders the job as "name⟨EST,TCD,CT⟩".
func (j Job) String() string {
	return fmt.Sprintf("%s<%g,%g,%g>", j.Name, j.EST, j.TCD, j.CT)
}

// ErrBadJob marks an internally inconsistent job.
var ErrBadJob = errors.New("sched: invalid job")

// Feasible reports whether the given single-shot jobs can all be scheduled
// on one processor (preemptive EDF feasibility, decided exactly by the
// processor-demand criterion). It also returns the tightest window as a
// human-readable witness when infeasible.
//
// When instrumentation is installed via Observe, every call books its
// verdict and latency; otherwise the overhead is one atomic load.
func Feasible(jobs []Job) (bool, string, error) {
	start, observed := observedNow()
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			record(start, false, observed)
			return false, "", err
		}
	}
	if len(jobs) <= 1 {
		record(start, true, observed)
		return true, "", nil
	}
	starts := make([]float64, 0, len(jobs))
	ends := make([]float64, 0, len(jobs))
	for _, j := range jobs {
		starts = append(starts, j.EST)
		ends = append(ends, j.TCD)
	}
	sort.Float64s(starts)
	sort.Float64s(ends)
	worstSlack := math.Inf(1)
	witness := ""
	for _, s := range starts {
		for _, d := range ends {
			if d <= s {
				continue
			}
			demand := 0.0
			var inside []string
			for _, j := range jobs {
				if j.EST >= s && j.TCD <= d {
					demand += j.CT
					inside = append(inside, j.Name)
				}
			}
			slack := (d - s) - demand
			if slack < worstSlack {
				worstSlack = slack
				witness = fmt.Sprintf("window [%g,%g): demand %g of %g {%s}",
					s, d, demand, d-s, strings.Join(inside, ","))
			}
		}
	}
	record(start, worstSlack >= 0, observed)
	return worstSlack >= 0, witness, nil
}

// FeasibleSet is a convenience wrapper returning only the boolean verdict;
// it reports false for invalid jobs.
func FeasibleSet(jobs []Job) bool {
	ok, _, err := Feasible(jobs)
	return err == nil && ok
}

// Utilization returns total CT over the union span of the jobs' windows —
// a coarse load indicator (not a feasibility test).
func Utilization(jobs []Job) float64 {
	if len(jobs) == 0 {
		return 0
	}
	minS, maxD := math.Inf(1), math.Inf(-1)
	total := 0.0
	for _, j := range jobs {
		minS = math.Min(minS, j.EST)
		maxD = math.Max(maxD, j.TCD)
		total += j.CT
	}
	if maxD <= minS {
		return 0
	}
	return total / (maxD - minS)
}

// Policy selects the uniprocessor scheduling policy for Simulate.
type Policy int

// Scheduling policies (§3.4.3: "If non-preemptive scheduling is used, then
// a timing fault (e.g., a task in an infinite loop) can cause all other
// tasks also to fail. However, the probability of transmission of the
// timing fault can be minimized by using preemptive scheduling").
const (
	// PreemptiveEDF runs the released job with the earliest deadline,
	// preempting on release.
	PreemptiveEDF Policy = iota + 1
	// NonPreemptiveEDF picks by earliest deadline but never preempts a
	// running job.
	NonPreemptiveEDF
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case PreemptiveEDF:
		return "preemptive-EDF"
	case NonPreemptiveEDF:
		return "non-preemptive-EDF"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Outcome describes one job's fate in a simulated schedule.
type Outcome struct {
	Job        Job
	Start      float64 // first time the job ran
	Finish     float64 // completion time (Inf if never completed)
	MissedLine bool    // finished after TCD (or never)
}

// Schedule is the result of simulating a job set under a policy.
type Schedule struct {
	Policy   Policy
	Outcomes []Outcome // sorted by job name
	Makespan float64
}

// Misses returns the names of jobs that missed their deadlines.
func (s Schedule) Misses() []string {
	var out []string
	for _, o := range s.Outcomes {
		if o.MissedLine {
			out = append(out, o.Job.Name)
		}
	}
	return out
}

// AllMet reports whether every job met its deadline.
func (s Schedule) AllMet() bool { return len(s.Misses()) == 0 }

// Horizon caps simulated time; jobs unfinished at the horizon are deadline
// misses with Finish = +Inf.
const defaultHorizon = 1e6

// Simulate runs the job set on one processor under the given policy using
// event-driven EDF simulation. A job whose Actual demand exceeds its CT
// budget models the paper's "task in an infinite loop" timing fault: under
// NonPreemptiveEDF it occupies the processor once started (until the
// horizon); under PreemptiveEDF the runtime kills it when its budget is
// exhausted, containing the fault.
func Simulate(jobs []Job, policy Policy) (Schedule, error) {
	for _, j := range jobs {
		if j.CT < 0 || j.TCD < j.EST {
			return Schedule{}, fmt.Errorf("%w: %s", ErrBadJob, j.Name)
		}
	}
	type state struct {
		job       Job
		remaining float64 // true demand left
		budget    float64 // declared budget left (preemptive enforcement)
		started   bool
		aborted   bool
		start     float64
		finish    float64
	}
	states := make([]*state, 0, len(jobs))
	for _, j := range jobs {
		st := &state{job: j, remaining: j.Demand(), budget: j.CT, finish: math.Inf(1)}
		if st.remaining == 0 {
			// A zero-work job completes the moment it is released.
			st.started = true
			st.start = j.EST
			st.finish = j.EST
		}
		states = append(states, st)
	}
	sort.Slice(states, func(i, j int) bool { return states[i].job.Name < states[j].job.Name })

	now := 0.0
	var running *state // for non-preemptive continuity
	for {
		// Released, unfinished jobs.
		var ready []*state
		var nextRelease = math.Inf(1)
		for _, st := range states {
			if st.remaining <= 0 || st.aborted {
				continue
			}
			// Budget and deadline enforcement: under preemptive scheduling
			// the runtime regains control at every timer tick, so a job
			// that has exhausted its declared CT budget, or whose deadline
			// has passed, is killed instead of occupying the processor.
			// This is what makes preemption a containment mechanism
			// (§3.4.3).
			if policy == PreemptiveEDF && (st.budget <= 1e-12 || now >= st.job.TCD) {
				st.aborted = true
				continue
			}
			if st.job.EST <= now {
				ready = append(ready, st)
			} else {
				nextRelease = math.Min(nextRelease, st.job.EST)
			}
		}
		if len(ready) == 0 {
			if math.IsInf(nextRelease, 1) {
				break // all done
			}
			now = nextRelease
			continue
		}
		var pick *state
		if policy == NonPreemptiveEDF && running != nil && running.remaining > 0 {
			pick = running
		} else {
			for _, st := range ready {
				if pick == nil || st.job.TCD < pick.job.TCD ||
					(st.job.TCD == pick.job.TCD && st.job.Name < pick.job.Name) {
					pick = st
				}
			}
		}
		if !pick.started {
			pick.started = true
			pick.start = now
		}
		running = pick
		// Run until the job finishes or (preemptive only) the next release.
		runFor := pick.remaining
		if policy == PreemptiveEDF {
			if !math.IsInf(nextRelease, 1) {
				runFor = math.Min(runFor, nextRelease-now)
			}
			// Never run past the job's budget or its deadline: the abort
			// check above fires on the next iteration.
			runFor = math.Min(runFor, pick.budget)
			runFor = math.Min(runFor, pick.job.TCD-now)
		}
		if now+runFor > defaultHorizon {
			// Horizon hit (e.g. an infinite-loop job under non-preemptive
			// scheduling). Everything unfinished misses.
			now = defaultHorizon
			break
		}
		now += runFor
		pick.remaining -= runFor
		pick.budget -= runFor
		if pick.remaining <= 1e-12 {
			pick.remaining = 0
			pick.finish = now
			running = nil
		}
	}

	out := Schedule{Policy: policy, Makespan: now}
	for _, st := range states {
		missed := math.IsInf(st.finish, 1) || st.finish > st.job.TCD+1e-12
		out.Outcomes = append(out.Outcomes, Outcome{
			Job:        st.job,
			Start:      st.start,
			Finish:     st.finish,
			MissedLine: missed,
		})
	}
	return out, nil
}
