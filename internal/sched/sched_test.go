package sched

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestJobValidate(t *testing.T) {
	tests := []struct {
		name    string
		job     Job
		wantErr bool
	}{
		{"ok", Job{Name: "a", EST: 0, TCD: 10, CT: 5}, false},
		{"zero ct", Job{Name: "a", EST: 0, TCD: 10, CT: 0}, false},
		{"negative ct", Job{Name: "a", EST: 0, TCD: 10, CT: -1}, true},
		{"deadline before release", Job{Name: "a", EST: 5, TCD: 3, CT: 1}, true},
		{"ct exceeds window", Job{Name: "a", EST: 0, TCD: 3, CT: 4}, true},
		{"nan est", Job{Name: "a", EST: math.NaN(), TCD: 10, CT: 5}, true},
		{"nan tcd", Job{Name: "a", EST: 0, TCD: math.NaN(), CT: 5}, true},
		{"nan ct", Job{Name: "a", EST: 0, TCD: 10, CT: math.NaN()}, true},
		{"inf tcd", Job{Name: "a", EST: 0, TCD: math.Inf(1), CT: 5}, true},
		{"inf actual is fine", Job{Name: "a", EST: 0, TCD: 10, CT: 5, Actual: math.Inf(1)}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.job.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() err = %v, wantErr %v", err, tt.wantErr)
			}
			if err != nil && !errors.Is(err, ErrBadJob) {
				t.Errorf("error not wrapping ErrBadJob: %v", err)
			}
		})
	}
}

func TestJobString(t *testing.T) {
	j := Job{Name: "p1", EST: 0, TCD: 20, CT: 5}
	if got := j.String(); got != "p1<0,20,5>" {
		t.Errorf("String = %q", got)
	}
}

func TestPaperInfeasibilityExample(t *testing.T) {
	// §6: "two nodes with timing constraints ⟨0,5,3⟩ and ⟨3,6,4⟩ …
	// cannot be scheduled on the same processor".
	jobs := []Job{
		{Name: "a", EST: 0, TCD: 5, CT: 3},
		{Name: "b", EST: 3, TCD: 6, CT: 4},
	}
	// Job b alone is already infeasible (CT 4 > window 3) — exactly why the
	// paper's pair can never be combined.
	ok, _, err := Feasible(jobs)
	if err == nil && ok {
		t.Error("paper's infeasible pair reported feasible")
	}
}

func TestFeasiblePairsFromTable1(t *testing.T) {
	// Reconstructed Table 1 jobs.
	p := map[string]Job{
		"p1": {Name: "p1", EST: 0, TCD: 20, CT: 5},
		"p2": {Name: "p2", EST: 8, TCD: 16, CT: 5},
		"p3": {Name: "p3", EST: 0, TCD: 15, CT: 4},
		"p4": {Name: "p4", EST: 5, TCD: 15, CT: 4},
		"p5": {Name: "p5", EST: 0, TCD: 10, CT: 3},
		"p6": {Name: "p6", EST: 10, TCD: 18, CT: 4},
		"p7": {Name: "p7", EST: 10, TCD: 16, CT: 3},
		"p8": {Name: "p8", EST: 12, TCD: 20, CT: 3},
	}
	feasibleSets := [][]string{
		{"p1", "p2"},
		{"p3", "p4"},
		{"p3", "p4", "p5"},
		{"p6", "p7", "p8"},
		{"p4", "p7"},
		{"p2", "p4"},
		{"p2", "p7"},
		// Fig. 7 pairs.
		{"p1", "p8"}, {"p1", "p7"}, {"p1", "p5"},
		{"p2", "p6"}, {"p2", "p3"},
		// Fig. 8 groups.
		{"p1", "p2", "p3"},
		{"p1", "p4", "p5"},
	}
	for _, set := range feasibleSets {
		jobs := make([]Job, 0, len(set))
		for _, name := range set {
			jobs = append(jobs, p[name])
		}
		ok, witness, err := Feasible(jobs)
		if err != nil {
			t.Fatalf("%v: %v", set, err)
		}
		if !ok {
			t.Errorf("set %v should be feasible; witness %s", set, witness)
		}
	}

	// The narrative constraint: "if p4 and p7 are scheduled on the same
	// processor, then p2 cannot be scheduled on that processor".
	jobs := []Job{p["p2"], p["p4"], p["p7"]}
	ok, witness, err := Feasible(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("{p2,p4,p7} should be infeasible")
	}
	if !strings.Contains(witness, "[5,16)") {
		t.Errorf("witness should identify window [5,16): %s", witness)
	}
}

func TestFeasibleTrivialCases(t *testing.T) {
	ok, _, err := Feasible(nil)
	if err != nil || !ok {
		t.Errorf("empty set: ok=%v err=%v", ok, err)
	}
	ok, _, err = Feasible([]Job{{Name: "a", EST: 0, TCD: 5, CT: 5}})
	if err != nil || !ok {
		t.Errorf("single exact-fit job: ok=%v err=%v", ok, err)
	}
}

func TestFeasibleRejectsInvalidJob(t *testing.T) {
	_, _, err := Feasible([]Job{{Name: "bad", EST: 0, TCD: 5, CT: 9}})
	if !errors.Is(err, ErrBadJob) {
		t.Errorf("err = %v, want ErrBadJob", err)
	}
	if FeasibleSet([]Job{{Name: "bad", EST: 0, TCD: 5, CT: 9}}) {
		t.Error("FeasibleSet accepted an invalid job")
	}
}

func TestFeasibleSubsetMonotone(t *testing.T) {
	// Property: removing a job never makes a feasible set infeasible.
	gen := func(seed uint32, n int) []Job {
		s := seed + 1
		next := func(mod uint32) float64 {
			s = s*1664525 + 1013904223
			return float64(s % mod)
		}
		jobs := make([]Job, 0, n)
		for i := 0; i < n; i++ {
			est := next(20)
			window := 2 + next(15)
			ct := 1 + next(uint32(window))
			jobs = append(jobs, Job{
				Name: string(rune('a' + i)),
				EST:  est, TCD: est + window, CT: math.Min(ct, window),
			})
		}
		return jobs
	}
	f := func(seed uint32) bool {
		jobs := gen(seed, 5)
		if !FeasibleSet(jobs) {
			return true // antecedent false
		}
		for drop := range jobs {
			sub := make([]Job, 0, len(jobs)-1)
			sub = append(sub, jobs[:drop]...)
			sub = append(sub, jobs[drop+1:]...)
			if !FeasibleSet(sub) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFeasibleAgreesWithSimulation(t *testing.T) {
	// Property: if the demand criterion says feasible, preemptive EDF
	// simulation meets every deadline (EDF is optimal for this job model),
	// and vice versa.
	gen := func(seed uint32) []Job {
		s := seed + 7
		next := func(mod uint32) float64 {
			s = s*1664525 + 1013904223
			return float64(s % mod)
		}
		n := 2 + int(next(4))
		jobs := make([]Job, 0, n)
		for i := 0; i < n; i++ {
			est := next(12)
			window := 2 + next(10)
			ct := 1 + next(uint32(window))
			jobs = append(jobs, Job{
				Name: string(rune('a' + i)),
				EST:  est, TCD: est + window, CT: math.Min(ct, window),
			})
		}
		return jobs
	}
	f := func(seed uint32) bool {
		jobs := gen(seed)
		ok, _, err := Feasible(jobs)
		if err != nil {
			return false
		}
		sched, err := Simulate(jobs, PreemptiveEDF)
		if err != nil {
			return false
		}
		return ok == sched.AllMet()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestUtilization(t *testing.T) {
	jobs := []Job{
		{Name: "a", EST: 0, TCD: 10, CT: 4},
		{Name: "b", EST: 5, TCD: 20, CT: 6},
	}
	if got := Utilization(jobs); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Utilization = %g, want 0.5", got)
	}
	if Utilization(nil) != 0 {
		t.Error("empty utilization should be 0")
	}
}

func TestSimulatePreemptive(t *testing.T) {
	jobs := []Job{
		{Name: "long", EST: 0, TCD: 20, CT: 8},
		{Name: "urgent", EST: 2, TCD: 6, CT: 3},
	}
	s, err := Simulate(jobs, PreemptiveEDF)
	if err != nil {
		t.Fatal(err)
	}
	if !s.AllMet() {
		t.Errorf("misses: %v", s.Misses())
	}
	// urgent must preempt long: it finishes at 5, long at 11.
	var urgent, long Outcome
	for _, o := range s.Outcomes {
		switch o.Job.Name {
		case "urgent":
			urgent = o
		case "long":
			long = o
		}
	}
	if urgent.Finish != 5 {
		t.Errorf("urgent finish = %g, want 5", urgent.Finish)
	}
	if long.Finish != 11 {
		t.Errorf("long finish = %g, want 11", long.Finish)
	}
}

func TestSimulateNonPreemptiveBlocksUrgent(t *testing.T) {
	jobs := []Job{
		{Name: "long", EST: 0, TCD: 20, CT: 8},
		{Name: "urgent", EST: 2, TCD: 6, CT: 3},
	}
	s, err := Simulate(jobs, NonPreemptiveEDF)
	if err != nil {
		t.Fatal(err)
	}
	misses := s.Misses()
	if len(misses) != 1 || misses[0] != "urgent" {
		t.Errorf("misses = %v, want [urgent]", misses)
	}
}

func TestSimulateInfiniteLoopFault(t *testing.T) {
	// §3.4.3: a task in an infinite loop under non-preemptive scheduling
	// causes all other tasks to fail; preemptive scheduling (with budget
	// enforcement) contains it.
	jobs := []Job{
		{Name: "stuck", EST: 0, TCD: 10, CT: 3, Actual: math.Inf(1)},
		{Name: "v1", EST: 1, TCD: 8, CT: 2},
		{Name: "v2", EST: 2, TCD: 12, CT: 3},
	}
	np, err := Simulate(jobs, NonPreemptiveEDF)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(np.Misses()); got != 3 {
		t.Errorf("non-preemptive misses = %v, want all 3", np.Misses())
	}
	p, err := Simulate(jobs, PreemptiveEDF)
	if err != nil {
		t.Fatal(err)
	}
	missed := map[string]bool{}
	for _, m := range p.Misses() {
		missed[m] = true
	}
	if missed["v1"] || missed["v2"] {
		t.Errorf("preemptive victims missed: %v", p.Misses())
	}
	if !missed["stuck"] {
		t.Error("the faulty task itself should miss its deadline")
	}
}

func TestSimulateRejectsInvalid(t *testing.T) {
	_, err := Simulate([]Job{{Name: "x", EST: 5, TCD: 1, CT: 1}}, PreemptiveEDF)
	if !errors.Is(err, ErrBadJob) {
		t.Errorf("err = %v, want ErrBadJob", err)
	}
}

func TestSimulateEmpty(t *testing.T) {
	s, err := Simulate(nil, PreemptiveEDF)
	if err != nil {
		t.Fatal(err)
	}
	if !s.AllMet() || s.Makespan != 0 {
		t.Errorf("empty schedule: %+v", s)
	}
}

func TestSimulateIdleGap(t *testing.T) {
	jobs := []Job{
		{Name: "a", EST: 0, TCD: 3, CT: 1},
		{Name: "b", EST: 10, TCD: 14, CT: 2},
	}
	s, err := Simulate(jobs, NonPreemptiveEDF)
	if err != nil {
		t.Fatal(err)
	}
	if !s.AllMet() {
		t.Errorf("misses: %v", s.Misses())
	}
	if s.Makespan != 12 {
		t.Errorf("makespan = %g, want 12", s.Makespan)
	}
}

func TestPolicyString(t *testing.T) {
	if PreemptiveEDF.String() != "preemptive-EDF" ||
		NonPreemptiveEDF.String() != "non-preemptive-EDF" {
		t.Error("policy names wrong")
	}
	if Policy(9).String() != "Policy(9)" {
		t.Error("unknown policy string wrong")
	}
}

func TestSimulateDeterministicTieBreak(t *testing.T) {
	// Equal deadlines: name order breaks the tie, so repeated runs agree.
	jobs := []Job{
		{Name: "b", EST: 0, TCD: 10, CT: 2},
		{Name: "a", EST: 0, TCD: 10, CT: 2},
	}
	s1, err := Simulate(jobs, PreemptiveEDF)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Simulate([]Job{jobs[1], jobs[0]}, PreemptiveEDF)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s1.Outcomes {
		if s1.Outcomes[i].Finish != s2.Outcomes[i].Finish {
			t.Errorf("non-deterministic schedule: %+v vs %+v",
				s1.Outcomes[i], s2.Outcomes[i])
		}
	}
}
