package spec

// Additional built-in example systems for tests, examples and benchmarks.
// Like the paper's flight-control motivation, these are integration
// problems where functions of widely different criticality must share a
// platform.

// BrakeByWire returns an automotive brake-by-wire suite: four wheel
// controllers (duplex), a pedal sensor and stability control (critical),
// and comfort/diagnostic functions that must never disturb them.
func BrakeByWire() *System {
	return &System{
		Name: "brake-by-wire",
		Processes: []Process{
			{Name: "pedal-sensor", Criticality: 18, FT: 2, EST: 0, TCD: 10, CT: 2},
			{Name: "stability-ctl", Criticality: 16, FT: 2, EST: 0, TCD: 20, CT: 5},
			{Name: "wheel-fl", Criticality: 14, FT: 2, EST: 2, TCD: 25, CT: 3},
			{Name: "wheel-fr", Criticality: 14, FT: 2, EST: 2, TCD: 25, CT: 3},
			{Name: "wheel-rl", Criticality: 12, FT: 1, EST: 2, TCD: 30, CT: 3},
			{Name: "wheel-rr", Criticality: 12, FT: 1, EST: 2, TCD: 30, CT: 3},
			{Name: "abs-tuning", Criticality: 6, FT: 1, EST: 5, TCD: 60, CT: 6},
			{Name: "diagnostics", Criticality: 2, FT: 1, EST: 10, TCD: 120, CT: 10},
			{Name: "comfort-brake", Criticality: 1, FT: 1, EST: 15, TCD: 150, CT: 8},
		},
		Influences: []Influence{
			{From: "pedal-sensor", To: "stability-ctl", Weight: 0.6, Factors: []string{"message-passing"}},
			{From: "stability-ctl", To: "wheel-fl", Weight: 0.5, Factors: []string{"message-passing"}},
			{From: "stability-ctl", To: "wheel-fr", Weight: 0.5, Factors: []string{"message-passing"}},
			{From: "stability-ctl", To: "wheel-rl", Weight: 0.45, Factors: []string{"message-passing"}},
			{From: "stability-ctl", To: "wheel-rr", Weight: 0.45, Factors: []string{"message-passing"}},
			{From: "pedal-sensor", To: "comfort-brake", Weight: 0.2, Factors: []string{"shared-memory"}},
			{From: "abs-tuning", To: "stability-ctl", Weight: 0.25, Factors: []string{"shared-memory"}},
			{From: "wheel-fl", To: "diagnostics", Weight: 0.15, Factors: []string{"message-passing"}},
			{From: "wheel-fr", To: "diagnostics", Weight: 0.15, Factors: []string{"message-passing"}},
			{From: "wheel-rl", To: "diagnostics", Weight: 0.1, Factors: []string{"message-passing"}},
			{From: "wheel-rr", To: "diagnostics", Weight: 0.1, Factors: []string{"message-passing"}},
			{From: "diagnostics", To: "comfort-brake", Weight: 0.2, Factors: []string{"shared-memory"}},
		},
		HWNodes: 6,
	}
}

// IndustrialControl returns a process-automation suite: a safety
// interlock (TMR) alongside regulatory control loops, an operator HMI and
// a data historian.
func IndustrialControl() *System {
	return &System{
		Name: "industrial-control",
		Processes: []Process{
			{Name: "safety-interlock", Criticality: 20, FT: 3, EST: 0, TCD: 15, CT: 3},
			{Name: "pressure-loop", Criticality: 10, FT: 2, EST: 0, TCD: 30, CT: 6},
			{Name: "temperature-loop", Criticality: 9, FT: 2, EST: 0, TCD: 40, CT: 6},
			{Name: "flow-loop", Criticality: 8, FT: 1, EST: 5, TCD: 50, CT: 5},
			{Name: "alarm-manager", Criticality: 7, FT: 1, EST: 0, TCD: 25, CT: 3},
			{Name: "hmi", Criticality: 3, FT: 1, EST: 10, TCD: 200, CT: 20, Resources: []string{"console"}},
			{Name: "historian", Criticality: 1, FT: 1, EST: 20, TCD: 400, CT: 30, Resources: []string{"disk"}},
		},
		Influences: []Influence{
			{From: "pressure-loop", To: "safety-interlock", Weight: 0.5, Factors: []string{"message-passing"}},
			{From: "temperature-loop", To: "safety-interlock", Weight: 0.4, Factors: []string{"message-passing"}},
			{From: "flow-loop", To: "pressure-loop", Weight: 0.35, Factors: []string{"shared-memory"}},
			{From: "pressure-loop", To: "alarm-manager", Weight: 0.4, Factors: []string{"message-passing"}},
			{From: "temperature-loop", To: "alarm-manager", Weight: 0.35, Factors: []string{"message-passing"}},
			{From: "alarm-manager", To: "hmi", Weight: 0.3, Factors: []string{"message-passing"}},
			{From: "pressure-loop", To: "historian", Weight: 0.1, Factors: []string{"message-passing"}},
			{From: "temperature-loop", To: "historian", Weight: 0.1, Factors: []string{"message-passing"}},
			{From: "flow-loop", To: "historian", Weight: 0.1, Factors: []string{"message-passing"}},
			{From: "hmi", To: "historian", Weight: 0.25, Factors: []string{"shared-memory"}},
		},
		HWNodes: 5,
	}
}
