package spec

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDecodeSystem checks that arbitrary input never panics the decoder
// and that anything it accepts round-trips losslessly through
// Encode/Decode. The seed corpus includes non-finite numerics (NaN cannot
// appear in JSON literals but huge exponents decode to +Inf) so validation
// gaps around them stay covered.
func FuzzDecodeSystem(f *testing.F) {
	var seed bytes.Buffer
	if err := PaperExample().Encode(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add(`{"name":"x","processes":[{"name":"a","criticality":1,"ft":1,"est":0,"tcd":10,"ct":5}],"hw_nodes":1}`)
	f.Add(`{"name":"x","processes":[{"name":"a","criticality":1e999,"ft":1,"est":0,"tcd":10,"ct":5}],"hw_nodes":1}`)
	f.Add(`{"name":"x","processes":[{"name":"a","criticality":1,"ft":1,"est":0,"tcd":1e999,"ct":5}],"hw_nodes":1}`)
	f.Add(`{"name":"x","processes":[{"name":"a","criticality":1,"ft":1,"est":0,"tcd":10,"ct":5},` +
		`{"name":"b","criticality":1,"ft":1,"est":0,"tcd":10,"ct":5}],` +
		`"influences":[{"from":"a","to":"b","weight":-1e-9}],"hw_nodes":1}`)
	f.Add(`{}`)
	f.Add(`[]`)
	f.Add(``)
	f.Fuzz(func(t *testing.T, data string) {
		sys, err := Decode(strings.NewReader(data))
		if err != nil {
			return // rejection is fine; panics are not
		}
		var buf bytes.Buffer
		if err := sys.Encode(&buf); err != nil {
			t.Fatalf("accepted system failed to encode: %v", err)
		}
		again, err := Decode(&buf)
		if err != nil {
			t.Fatalf("accepted system failed to re-decode: %v", err)
		}
		if len(again.Processes) != len(sys.Processes) ||
			len(again.Influences) != len(sys.Influences) ||
			again.HWNodes != sys.HWNodes {
			t.Fatalf("round trip changed the system: %+v vs %+v", sys, again)
		}
		// Anything Decode accepts must build a graph without error.
		if _, err := sys.Graph(); err != nil {
			t.Fatalf("accepted system fails Graph(): %v", err)
		}
	})
}

// FuzzDecodeHierarchy checks the hierarchy decoder never panics and that
// accepted hierarchies validate.
func FuzzDecodeHierarchy(f *testing.F) {
	var seed bytes.Buffer
	if err := ExampleHierarchy().Encode(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add(`{"name":"x","processes":[]}`)
	f.Fuzz(func(t *testing.T, data string) {
		_, h, err := DecodeHierarchy(strings.NewReader(data))
		if err != nil {
			return
		}
		if err := h.Validate(); err != nil {
			t.Fatalf("accepted hierarchy invalid: %v", err)
		}
	})
}
