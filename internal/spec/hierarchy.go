package spec

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/attrs"
	"repro/internal/core"
)

// HierarchySpec is the JSON description of a three-level FCM hierarchy,
// consumed by the certification tooling (cmd/certify). It mirrors Fig. 1:
// processes contain tasks, tasks contain procedures.
type HierarchySpec struct {
	Name      string        `json:"name"`
	Processes []ProcessSpec `json:"processes"`
}

// ProcessSpec is one process-level FCM.
type ProcessSpec struct {
	Name        string     `json:"name"`
	Criticality float64    `json:"criticality,omitempty"`
	Tasks       []TaskSpec `json:"tasks"`
}

// TaskSpec is one task-level FCM.
type TaskSpec struct {
	Name       string          `json:"name"`
	Procedures []ProcedureSpec `json:"procedures"`
}

// ProcedureSpec is one procedure-level FCM.
type ProcedureSpec struct {
	Name string `json:"name"`
	// Stateless procedures may be cloned per caller (rule R2's reuse
	// path).
	Stateless bool `json:"stateless,omitempty"`
}

// Build materialises the hierarchy, validating rules R1/R2 structurally.
func (hs *HierarchySpec) Build() (*core.Hierarchy, error) {
	h := core.NewHierarchy()
	for _, p := range hs.Processes {
		a := attrs.Set{}
		if p.Criticality > 0 {
			a = attrs.New(map[attrs.Kind]float64{attrs.Criticality: p.Criticality})
		}
		if _, err := h.AddProcess(p.Name, a); err != nil {
			return nil, fmt.Errorf("spec: hierarchy: %w", err)
		}
		for _, t := range p.Tasks {
			if _, err := h.AddTask(p.Name, t.Name, attrs.Set{}); err != nil {
				return nil, fmt.Errorf("spec: hierarchy: %w", err)
			}
			for _, f := range t.Procedures {
				if _, err := h.AddProcedure(t.Name, f.Name, attrs.Set{}, f.Stateless); err != nil {
					return nil, fmt.Errorf("spec: hierarchy: %w", err)
				}
			}
		}
	}
	if err := h.Validate(); err != nil {
		return nil, fmt.Errorf("spec: hierarchy: %w", err)
	}
	return h, nil
}

// DecodeHierarchy reads a hierarchy spec from JSON and builds it.
func DecodeHierarchy(r io.Reader) (*HierarchySpec, *core.Hierarchy, error) {
	var hs HierarchySpec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&hs); err != nil {
		return nil, nil, fmt.Errorf("spec: hierarchy decode: %w", err)
	}
	h, err := hs.Build()
	if err != nil {
		return nil, nil, err
	}
	return &hs, h, nil
}

// EncodeHierarchy writes the spec as indented JSON.
func (hs *HierarchySpec) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(hs); err != nil {
		return fmt.Errorf("spec: hierarchy encode: %w", err)
	}
	return nil
}

// ExampleHierarchy returns a flight-control style hierarchy spec used as
// the cmd/certify template.
func ExampleHierarchy() *HierarchySpec {
	return &HierarchySpec{
		Name: "flight-control-hierarchy",
		Processes: []ProcessSpec{
			{
				Name: "navigation", Criticality: 15,
				Tasks: []TaskSpec{
					{Name: "guidance", Procedures: []ProcedureSpec{
						{Name: "kalman", Stateless: true},
						{Name: "waypoint", Stateless: true},
					}},
					{Name: "autopilot", Procedures: []ProcedureSpec{
						{Name: "pid", Stateless: true},
						{Name: "trim", Stateless: true},
					}},
				},
			},
			{
				Name: "display", Criticality: 5,
				Tasks: []TaskSpec{
					{Name: "render", Procedures: []ProcedureSpec{
						{Name: "blit"},
						{Name: "layout", Stateless: true},
					}},
				},
			},
		},
	}
}
