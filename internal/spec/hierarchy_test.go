package spec

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/attrs"
	"repro/internal/core"
)

func TestExampleHierarchyBuilds(t *testing.T) {
	hs := ExampleHierarchy()
	h, err := hs.Build()
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 11 {
		t.Errorf("FCM count = %d, want 11", h.Len())
	}
	nav, err := h.Lookup("navigation")
	if err != nil {
		t.Fatal(err)
	}
	if nav.Level() != core.ProcessLevel {
		t.Errorf("navigation level = %s", nav.Level())
	}
	if nav.Attrs().Value(attrs.Criticality) != 15 {
		t.Errorf("criticality = %g", nav.Attrs().Value(attrs.Criticality))
	}
	k, err := h.Lookup("kalman")
	if err != nil {
		t.Fatal(err)
	}
	if !k.Stateless() || k.Parent().Name() != "guidance" {
		t.Errorf("kalman: stateless=%v parent=%s", k.Stateless(), k.Parent().Name())
	}
	b, err := h.Lookup("blit")
	if err != nil {
		t.Fatal(err)
	}
	if b.Stateless() {
		t.Error("blit should be stateful")
	}
}

func TestHierarchyJSONRoundTrip(t *testing.T) {
	hs := ExampleHierarchy()
	var buf bytes.Buffer
	if err := hs.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, h, err := DecodeHierarchy(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Name != hs.Name || len(decoded.Processes) != len(hs.Processes) {
		t.Errorf("round trip: %+v", decoded)
	}
	if h.Len() != 11 {
		t.Errorf("rebuilt FCM count = %d", h.Len())
	}
}

func TestHierarchyBuildRejectsDuplicates(t *testing.T) {
	hs := &HierarchySpec{
		Name: "dup",
		Processes: []ProcessSpec{
			{Name: "p", Tasks: []TaskSpec{
				{Name: "t", Procedures: []ProcedureSpec{{Name: "f"}, {Name: "f"}}},
			}},
		},
	}
	if _, err := hs.Build(); err == nil {
		t.Error("duplicate procedure name accepted")
	}
}

func TestDecodeHierarchyRejectsGarbage(t *testing.T) {
	if _, _, err := DecodeHierarchy(strings.NewReader("nope")); err == nil {
		t.Error("garbage accepted")
	}
	if _, _, err := DecodeHierarchy(strings.NewReader(`{"name":"x","bogus":[]}`)); err == nil {
		t.Error("unknown field accepted")
	}
}
