// Package spec defines the external system-specification format of the
// reproduction: the set of process-level FCMs with their Table-1 style
// attributes, the influence edges between them, and the target hardware
// size. Specifications round-trip through JSON and convert to the internal
// graph and job models.
//
// The canonical fixture, PaperExample, is the reconstruction of the worked
// example of ICDCS 1998 §6 (processes p1..p8, Table 1, Fig. 3); the
// reconstruction constraints are documented in DESIGN.md.
package spec

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/attrs"
	"repro/internal/graph"
	"repro/internal/sched"
)

// Errors returned by validation.
var (
	ErrEmptySystem   = errors.New("spec: system has no processes")
	ErrDuplicate     = errors.New("spec: duplicate process name")
	ErrUnknownTarget = errors.New("spec: influence references unknown process")
	ErrBadValue      = errors.New("spec: invalid attribute value")
)

// Process is one process-level FCM with the attribute tuple of Table 1.
type Process struct {
	Name string `json:"name"`
	// Criticality (C).
	Criticality float64 `json:"criticality"`
	// FT is the fault-tolerance replication degree: 1 = simplex,
	// 2 = duplex, 3 = TMR.
	FT int `json:"ft"`
	// EST, TCD, CT are the timing triple: earliest start time, task
	// completion deadline, computation time.
	EST float64 `json:"est"`
	TCD float64 `json:"tcd"`
	CT  float64 `json:"ct"`
	// Resources lists names of HW resources this process requires.
	Resources []string `json:"resources,omitempty"`
}

// Attrs converts the process attributes to the internal attribute set.
func (p Process) Attrs() attrs.Set {
	return attrs.Timing(p.Criticality, p.FT, p.EST, p.TCD, p.CT)
}

// Job converts the process to its single-shot scheduling job.
func (p Process) Job() sched.Job {
	return sched.Job{Name: p.Name, EST: p.EST, TCD: p.TCD, CT: p.CT}
}

// Influence is one directed influence edge of the SW graph (Fig. 3).
type Influence struct {
	From    string   `json:"from"`
	To      string   `json:"to"`
	Weight  float64  `json:"weight"`
	Factors []string `json:"factors,omitempty"`
}

// System is a complete integration problem: software processes, their
// influences, and the hardware target.
type System struct {
	Name       string      `json:"name"`
	Processes  []Process   `json:"processes"`
	Influences []Influence `json:"influences"`
	// HWNodes is the number of processors the SW graph must be reduced to.
	HWNodes int `json:"hw_nodes"`
}

// Validate checks internal consistency.
func (s *System) Validate() error {
	if len(s.Processes) == 0 {
		return ErrEmptySystem
	}
	seen := make(map[string]bool, len(s.Processes))
	for _, p := range s.Processes {
		if p.Name == "" {
			return fmt.Errorf("%w: empty process name", ErrBadValue)
		}
		if seen[p.Name] {
			return fmt.Errorf("%w: %q", ErrDuplicate, p.Name)
		}
		seen[p.Name] = true
		if p.FT < 1 {
			return fmt.Errorf("%w: %s has FT %d (must be >= 1)", ErrBadValue, p.Name, p.FT)
		}
		// The comparison alone lets NaN through (every comparison with
		// NaN is false); reject non-finite criticality explicitly so it
		// cannot poison the Eq. (2) products downstream.
		if p.Criticality < 0 || math.IsNaN(p.Criticality) || math.IsInf(p.Criticality, 0) {
			return fmt.Errorf("%w: %s has criticality %g", ErrBadValue, p.Name, p.Criticality)
		}
		if err := p.Job().Validate(); err != nil {
			return fmt.Errorf("spec: %s: %w", p.Name, err)
		}
	}
	for _, e := range s.Influences {
		if !seen[e.From] {
			return fmt.Errorf("%w: %q", ErrUnknownTarget, e.From)
		}
		if !seen[e.To] {
			return fmt.Errorf("%w: %q", ErrUnknownTarget, e.To)
		}
		if e.From == e.To {
			return fmt.Errorf("%w: self influence on %q", ErrBadValue, e.From)
		}
		if e.Weight < 0 || e.Weight > 1 || math.IsNaN(e.Weight) {
			return fmt.Errorf("%w: influence %s->%s weight %g", ErrBadValue, e.From, e.To, e.Weight)
		}
	}
	if s.HWNodes < 1 {
		return fmt.Errorf("%w: hw_nodes %d", ErrBadValue, s.HWNodes)
	}
	return nil
}

// Clone returns a deep copy of the system: mutating the copy (or any
// slice reachable from it) never aliases the original. Scenario tooling
// uses it to perturb a generated system without disturbing the source.
func (s *System) Clone() *System {
	if s == nil {
		return nil
	}
	c := &System{Name: s.Name, HWNodes: s.HWNodes}
	if s.Processes != nil {
		c.Processes = make([]Process, len(s.Processes))
		for i, p := range s.Processes {
			if p.Resources != nil {
				p.Resources = append([]string(nil), p.Resources...)
			}
			c.Processes[i] = p
		}
	}
	if s.Influences != nil {
		c.Influences = make([]Influence, len(s.Influences))
		for i, inf := range s.Influences {
			if inf.Factors != nil {
				inf.Factors = append([]string(nil), inf.Factors...)
			}
			c.Influences[i] = inf
		}
	}
	return c
}

// Process returns the named process.
func (s *System) Process(name string) (Process, bool) {
	for _, p := range s.Processes {
		if p.Name == name {
			return p, true
		}
	}
	return Process{}, false
}

// Graph builds the initial SW influence graph (Fig. 3): one node per
// process (no replication yet), one directed weighted edge per influence.
func (s *System) Graph() (*graph.Graph, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	g := graph.New()
	for _, p := range s.Processes {
		if err := g.AddNode(p.Name, p.Attrs()); err != nil {
			return nil, err
		}
	}
	for _, e := range s.Influences {
		if err := g.SetEdge(e.From, e.To, e.Weight, e.Factors...); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Jobs returns the scheduling jobs of all processes, name-sorted.
func (s *System) Jobs() []sched.Job {
	out := make([]sched.Job, 0, len(s.Processes))
	for _, p := range s.Processes {
		out = append(out, p.Job())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// TotalReplicas returns the node count after replication expansion
// (Σ FT_i).
func (s *System) TotalReplicas() int {
	n := 0
	for _, p := range s.Processes {
		n += p.FT
	}
	return n
}

// Encode writes the system as indented JSON.
func (s *System) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return fmt.Errorf("spec: encode: %w", err)
	}
	return nil
}

// Decode reads and validates a system from JSON.
func Decode(r io.Reader) (*System, error) {
	var s System
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("spec: decode: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// PaperExample returns the reconstructed worked example of §6: Table 1's
// eight processes and Fig. 3's influence edges, to be reduced onto the
// six-node strongly connected HW graph. See DESIGN.md §5 for the
// reconstruction constraints; the two surviving computed values of Fig. 5
// (0.76 and 0.37) are reproduced exactly by this edge set.
func PaperExample() *System {
	return &System{
		Name: "icdcs98-worked-example",
		Processes: []Process{
			{Name: "p1", Criticality: 15, FT: 3, EST: 0, TCD: 20, CT: 5},
			{Name: "p2", Criticality: 10, FT: 2, EST: 8, TCD: 16, CT: 5},
			{Name: "p3", Criticality: 10, FT: 2, EST: 0, TCD: 15, CT: 4},
			{Name: "p4", Criticality: 6, FT: 1, EST: 5, TCD: 15, CT: 4},
			{Name: "p5", Criticality: 3, FT: 1, EST: 0, TCD: 10, CT: 3},
			{Name: "p6", Criticality: 4, FT: 1, EST: 10, TCD: 18, CT: 4},
			{Name: "p7", Criticality: 2, FT: 1, EST: 10, TCD: 16, CT: 3},
			{Name: "p8", Criticality: 1, FT: 1, EST: 12, TCD: 20, CT: 3},
		},
		Influences: []Influence{
			{From: "p1", To: "p2", Weight: 0.7, Factors: []string{"shared-memory"}},
			{From: "p2", To: "p1", Weight: 0.5, Factors: []string{"shared-memory"}},
			{From: "p3", To: "p4", Weight: 0.6, Factors: []string{"message-passing"}},
			{From: "p4", To: "p3", Weight: 0.3, Factors: []string{"message-passing"}},
			{From: "p3", To: "p5", Weight: 0.7, Factors: []string{"shared-memory"}},
			{From: "p4", To: "p5", Weight: 0.2, Factors: []string{"message-passing"}},
			{From: "p2", To: "p3", Weight: 0.2, Factors: []string{"message-passing"}},
			{From: "p7", To: "p8", Weight: 0.3, Factors: []string{"timing"}},
			{From: "p8", To: "p7", Weight: 0.2, Factors: []string{"timing"}},
			{From: "p5", To: "p7", Weight: 0.2, Factors: []string{"message-passing"}},
			{From: "p5", To: "p6", Weight: 0.1, Factors: []string{"message-passing"}},
			{From: "p8", To: "p6", Weight: 0.3, Factors: []string{"resource-sharing"}},
			{From: "p6", To: "p1", Weight: 0.1, Factors: []string{"message-passing"}},
		},
		HWNodes: 6,
	}
}

// FlightControl returns the intro's motivating integration workload: "the
// integration for flight control SW involves display, sensor, collision
// avoidance, and navigation SW onto a shared platform" (the AIMS system of
// the Boeing 777). Values are illustrative; collision avoidance and
// navigation are critical and replicated.
func FlightControl() *System {
	return &System{
		Name: "flight-control",
		Processes: []Process{
			{Name: "collision-avoidance", Criticality: 20, FT: 3, EST: 0, TCD: 50, CT: 10},
			{Name: "navigation", Criticality: 15, FT: 2, EST: 0, TCD: 60, CT: 12},
			{Name: "sensor-fusion", Criticality: 12, FT: 2, EST: 0, TCD: 40, CT: 8},
			{Name: "autopilot", Criticality: 14, FT: 2, EST: 10, TCD: 80, CT: 15},
			{Name: "display", Criticality: 5, FT: 1, EST: 20, TCD: 120, CT: 20, Resources: []string{"framebuffer"}},
			{Name: "datalink", Criticality: 4, FT: 1, EST: 0, TCD: 100, CT: 10, Resources: []string{"radio"}},
			{Name: "maintenance-log", Criticality: 1, FT: 1, EST: 30, TCD: 200, CT: 15},
		},
		Influences: []Influence{
			{From: "sensor-fusion", To: "collision-avoidance", Weight: 0.6, Factors: []string{"message-passing"}},
			{From: "sensor-fusion", To: "navigation", Weight: 0.5, Factors: []string{"message-passing"}},
			{From: "navigation", To: "autopilot", Weight: 0.55, Factors: []string{"shared-memory"}},
			{From: "collision-avoidance", To: "autopilot", Weight: 0.4, Factors: []string{"message-passing"}},
			{From: "autopilot", To: "display", Weight: 0.3, Factors: []string{"message-passing"}},
			{From: "navigation", To: "display", Weight: 0.25, Factors: []string{"message-passing"}},
			{From: "datalink", To: "navigation", Weight: 0.15, Factors: []string{"message-passing"}},
			{From: "display", To: "maintenance-log", Weight: 0.2, Factors: []string{"shared-memory"}},
			{From: "autopilot", To: "maintenance-log", Weight: 0.1, Factors: []string{"message-passing"}},
			{From: "datalink", To: "maintenance-log", Weight: 0.3, Factors: []string{"shared-memory"}},
		},
		HWNodes: 4,
	}
}
