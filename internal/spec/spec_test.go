package spec

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/attrs"
	"repro/internal/sched"
)

func TestPaperExampleValid(t *testing.T) {
	s := PaperExample()
	if err := s.Validate(); err != nil {
		t.Fatalf("paper example invalid: %v", err)
	}
	if len(s.Processes) != 8 {
		t.Errorf("processes = %d, want 8", len(s.Processes))
	}
	if s.HWNodes != 6 {
		t.Errorf("hw nodes = %d, want 6", s.HWNodes)
	}
	// Narrative facts: p1 TMR, p2/p3 duplex, p4..p8 simplex.
	wantFT := map[string]int{"p1": 3, "p2": 2, "p3": 2, "p4": 1, "p5": 1, "p6": 1, "p7": 1, "p8": 1}
	for name, ft := range wantFT {
		p, ok := s.Process(name)
		if !ok || p.FT != ft {
			t.Errorf("%s FT = %d (found=%v), want %d", name, p.FT, ok, ft)
		}
	}
	// Replication expands 8 processes to 12 nodes (Fig. 4).
	if got := s.TotalReplicas(); got != 12 {
		t.Errorf("TotalReplicas = %d, want 12", got)
	}
	// Criticality order must make Approach B produce Fig. 7's pairs:
	// ascending tail p8 < p7 < p5 < p6 < p4.
	ascending := []string{"p8", "p7", "p5", "p6", "p4"}
	for i := 1; i < len(ascending); i++ {
		a, _ := s.Process(ascending[i-1])
		b, _ := s.Process(ascending[i])
		if a.Criticality >= b.Criticality {
			t.Errorf("criticality order broken: %s (%g) >= %s (%g)",
				a.Name, a.Criticality, b.Name, b.Criticality)
		}
	}
}

func TestPaperExampleNarrativeTiming(t *testing.T) {
	s := PaperExample()
	job := func(n string) sched.Job {
		p, ok := s.Process(n)
		if !ok {
			t.Fatalf("no process %s", n)
		}
		return p.Job()
	}
	// "if p4 and p7 are scheduled on the same processor, then p2 cannot be
	// scheduled on that processor".
	if !sched.FeasibleSet([]sched.Job{job("p4"), job("p7")}) {
		t.Error("{p4,p7} must be feasible")
	}
	if sched.FeasibleSet([]sched.Job{job("p2"), job("p4"), job("p7")}) {
		t.Error("{p2,p4,p7} must be infeasible")
	}
}

func TestPaperExampleInfluenceAlgebra(t *testing.T) {
	// The two surviving Fig. 5 values: merging {p3,p4} gives a combined
	// influence on p5 of 0.76; p5's and {p7,p8}'s influences on p6 combine
	// to 0.37.
	s := PaperExample()
	w := map[string]float64{}
	for _, e := range s.Influences {
		w[e.From+">"+e.To] = e.Weight
	}
	v76 := 1 - (1-w["p3>p5"])*(1-w["p4>p5"])
	if math.Abs(v76-0.76) > 1e-12 {
		t.Errorf("{p3,p4}->p5 = %g, want 0.76", v76)
	}
	v37 := 1 - (1-w["p5>p6"])*(1-w["p8>p6"])
	if math.Abs(v37-0.37) > 1e-12 {
		t.Errorf("{p5,p7,p8}->p6 = %g, want 0.37", v37)
	}
}

func TestGraphConstruction(t *testing.T) {
	s := PaperExample()
	g, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 8 {
		t.Errorf("graph nodes = %d, want 8", g.NumNodes())
	}
	if g.NumEdges() != len(s.Influences) {
		t.Errorf("graph edges = %d, want %d", g.NumEdges(), len(s.Influences))
	}
	if got := g.Influence("p1", "p2"); got != 0.7 {
		t.Errorf("p1->p2 = %g, want 0.7", got)
	}
	a := g.Attrs("p1")
	if a.Value(attrs.Criticality) != 15 || a.Value(attrs.FaultTolerance) != 3 {
		t.Errorf("p1 attrs = %s", a)
	}
	// Mutual influence of (p1,p2) is the highest: 1.2 (drives the first H1
	// merge in Fig. 5's narration).
	best, bestPair := 0.0, ""
	for _, x := range g.Nodes() {
		for _, y := range g.Nodes() {
			if x < y {
				if m := g.MutualInfluence(x, y); m > best {
					best, bestPair = m, x+","+y
				}
			}
		}
	}
	if bestPair != "p1,p2" || math.Abs(best-1.2) > 1e-12 {
		t.Errorf("highest mutual influence = %s (%g), want p1,p2 (1.2)", bestPair, best)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	base := func() *System {
		return &System{
			Name: "t",
			Processes: []Process{
				{Name: "a", Criticality: 1, FT: 1, EST: 0, TCD: 10, CT: 5},
				{Name: "b", Criticality: 1, FT: 1, EST: 0, TCD: 10, CT: 5},
			},
			HWNodes: 2,
		}
	}
	tests := []struct {
		name    string
		mutate  func(*System)
		wantErr error
	}{
		{"empty", func(s *System) { s.Processes = nil }, ErrEmptySystem},
		{"dup", func(s *System) { s.Processes[1].Name = "a" }, ErrDuplicate},
		{"empty name", func(s *System) { s.Processes[0].Name = "" }, ErrBadValue},
		{"bad ft", func(s *System) { s.Processes[0].FT = 0 }, ErrBadValue},
		{"neg criticality", func(s *System) { s.Processes[0].Criticality = -1 }, ErrBadValue},
		{"bad job", func(s *System) { s.Processes[0].CT = 100 }, sched.ErrBadJob},
		{"unknown from", func(s *System) {
			s.Influences = []Influence{{From: "zz", To: "a", Weight: 0.5}}
		}, ErrUnknownTarget},
		{"unknown to", func(s *System) {
			s.Influences = []Influence{{From: "a", To: "zz", Weight: 0.5}}
		}, ErrUnknownTarget},
		{"self influence", func(s *System) {
			s.Influences = []Influence{{From: "a", To: "a", Weight: 0.5}}
		}, ErrBadValue},
		{"bad weight", func(s *System) {
			s.Influences = []Influence{{From: "a", To: "b", Weight: 1.5}}
		}, ErrBadValue},
		{"nan weight", func(s *System) {
			s.Influences = []Influence{{From: "a", To: "b", Weight: math.NaN()}}
		}, ErrBadValue},
		{"nan criticality", func(s *System) { s.Processes[0].Criticality = math.NaN() }, ErrBadValue},
		{"inf criticality", func(s *System) { s.Processes[0].Criticality = math.Inf(1) }, ErrBadValue},
		{"nan timing", func(s *System) { s.Processes[0].TCD = math.NaN() }, sched.ErrBadJob},
		{"bad hw", func(s *System) { s.HWNodes = 0 }, ErrBadValue},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := base()
			tt.mutate(s)
			if err := s.Validate(); !errors.Is(err, tt.wantErr) {
				t.Errorf("err = %v, want %v", err, tt.wantErr)
			}
		})
	}
	if err := base().Validate(); err != nil {
		t.Errorf("base system invalid: %v", err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := PaperExample()
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != s.Name || len(got.Processes) != len(s.Processes) ||
		len(got.Influences) != len(s.Influences) || got.HWNodes != s.HWNodes {
		t.Errorf("round trip mismatch: %+v", got)
	}
	p, ok := got.Process("p2")
	if !ok || p.EST != 8 || p.TCD != 16 || p.CT != 5 {
		t.Errorf("p2 after round trip: %+v", p)
	}
}

func TestDecodeRejectsUnknownFieldsAndInvalid(t *testing.T) {
	if _, err := Decode(strings.NewReader(`{"name":"x","bogus":1}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := Decode(strings.NewReader(`{"name":"x","processes":[],"hw_nodes":1}`)); !errors.Is(err, ErrEmptySystem) {
		t.Errorf("err = %v, want ErrEmptySystem", err)
	}
	if _, err := Decode(strings.NewReader(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}

func TestJobsSorted(t *testing.T) {
	s := PaperExample()
	jobs := s.Jobs()
	if len(jobs) != 8 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	for i := 1; i < len(jobs); i++ {
		if jobs[i-1].Name >= jobs[i].Name {
			t.Errorf("jobs not sorted: %v", jobs)
		}
	}
}

func TestFlightControlValid(t *testing.T) {
	s := FlightControl()
	if err := s.Validate(); err != nil {
		t.Fatalf("flight control example invalid: %v", err)
	}
	if s.TotalReplicas() <= len(s.Processes) {
		t.Error("flight control should include replication")
	}
	if _, err := s.Graph(); err != nil {
		t.Errorf("graph: %v", err)
	}
}

func TestProcessLookup(t *testing.T) {
	s := PaperExample()
	if _, ok := s.Process("p1"); !ok {
		t.Error("p1 not found")
	}
	if _, ok := s.Process("nope"); ok {
		t.Error("phantom process found")
	}
}

func TestBrakeByWireValid(t *testing.T) {
	s := BrakeByWire()
	if err := s.Validate(); err != nil {
		t.Fatalf("brake-by-wire invalid: %v", err)
	}
	if s.TotalReplicas() != 13 {
		t.Errorf("replicas = %d, want 13", s.TotalReplicas())
	}
	if _, err := s.Graph(); err != nil {
		t.Error(err)
	}
}

func TestIndustrialControlValid(t *testing.T) {
	s := IndustrialControl()
	if err := s.Validate(); err != nil {
		t.Fatalf("industrial-control invalid: %v", err)
	}
	p, ok := s.Process("safety-interlock")
	if !ok || p.FT != 3 {
		t.Errorf("safety interlock FT = %d, want TMR", p.FT)
	}
	if _, err := s.Graph(); err != nil {
		t.Error(err)
	}
}

func TestSystemClone(t *testing.T) {
	if (*System)(nil).Clone() != nil {
		t.Fatal("nil Clone should stay nil")
	}
	orig := PaperExample()
	orig.Processes[0].Resources = []string{"sensor"}
	orig.Influences[0].Factors = []string{"message-passing"}

	c := orig.Clone()
	var a, b bytes.Buffer
	if err := orig.Encode(&a); err != nil {
		t.Fatal(err)
	}
	if err := c.Encode(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("clone encodes differently from the original")
	}

	// Mutating every level of the clone must leave the original alone.
	c.Name = "mutant"
	c.HWNodes++
	c.Processes[0].Criticality = 99
	c.Processes[0].Resources[0] = "mutated"
	c.Influences[0].Weight = 0.123
	c.Influences[0].Factors[0] = "mutated"
	var after bytes.Buffer
	if err := orig.Encode(&after); err != nil {
		t.Fatal(err)
	}
	if a.String() != after.String() {
		t.Fatal("mutating the clone changed the original")
	}
}
