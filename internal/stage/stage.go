// Package stage is the framework's structured error taxonomy. Every error
// that escapes a pipeline stage — partition, influence, replicate,
// condense, map, evaluate, inject — is wrapped in an *Error carrying the
// stage name, the heuristic or framework rule involved (H1, H2, R1…), and
// the offending node when one is known, so library callers can route on
// errors.As/Is instead of parsing strings.
//
// The package also supplies the panic firewall of the resilience layer:
// Run executes a stage body with recovery, converting any panic into an
// *Error wrapping ErrPanic that carries the recovered stack. Library
// callers of depint.Integrate therefore never see a raw panic from a
// pathological specification.
package stage

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
)

// Sentinel errors of the taxonomy.
var (
	// ErrPanic marks an error produced by recovering a panic at a stage
	// boundary. The wrapping *Error carries the recovered stack.
	ErrPanic = errors.New("panic recovered")
	// ErrExhausted marks a fallback chain whose every strategy failed.
	ErrExhausted = errors.New("fallback chain exhausted")
)

// Error is one classified pipeline failure.
type Error struct {
	// Stage names the pipeline stage (or subsystem) the error escaped
	// from: "partition", "condense", "map", "inject", "hierarchy", …
	Stage string
	// Rule names the heuristic or framework rule involved, when one is:
	// a condensation strategy ("H2-min-cut"), a composition rule ("R1"),
	// an attribute policy, …
	Rule string
	// Node names the offending FCM / cluster / HW node, when known.
	Node string
	// Err is the underlying cause; never nil.
	Err error
	// Stack holds the recovered goroutine stack when the error came from
	// a panic (nil otherwise).
	Stack []byte
}

// Error renders "stage condense [rule H2-min-cut] [node p3]: cause".
func (e *Error) Error() string {
	s := "stage " + e.Stage
	if e.Rule != "" {
		s += " [rule " + e.Rule + "]"
	}
	if e.Node != "" {
		s += " [node " + e.Node + "]"
	}
	return s + ": " + e.Err.Error()
}

// Unwrap exposes the cause to errors.Is / errors.As.
func (e *Error) Unwrap() error { return e.Err }

// Wrap classifies err under (stage, rule, node). A nil err returns nil;
// an err that is already an *Error is returned unchanged, preserving the
// innermost (most precise) classification.
func Wrap(stageName, rule, node string, err error) error {
	if err == nil {
		return nil
	}
	var se *Error
	if errors.As(err, &se) {
		return err
	}
	return &Error{Stage: stageName, Rule: rule, Node: node, Err: err}
}

// Wrapf is Wrap with a formatted cause that wraps err via %w.
func Wrapf(stageName, rule, node string, err error, format string, args ...any) error {
	if err == nil {
		return nil
	}
	args = append(args, err)
	return Wrap(stageName, rule, node, fmt.Errorf(format+": %w", args...))
}

// Run executes fn as the body of the named stage with a panic firewall:
// a panic is recovered into an *Error wrapping ErrPanic (with the stack
// attached), and any plain error return is classified under the stage.
func Run(stageName string, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &Error{
				Stage: stageName,
				Err:   fmt.Errorf("%w: %v", ErrPanic, r),
				Stack: debug.Stack(),
			}
		}
	}()
	return Wrap(stageName, "", "", fn())
}

// Check returns a classified cancellation error when ctx is done, nil
// otherwise — the cooperative check-point the hot loops call.
func Check(ctx context.Context, stageName string) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return &Error{Stage: stageName, Err: err}
	}
	return nil
}
