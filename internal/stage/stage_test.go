package stage

import (
	"context"
	"errors"
	"strings"
	"testing"
)

func TestErrorRendering(t *testing.T) {
	cause := errors.New("boom")
	e := &Error{Stage: "condense", Rule: "H2-min-cut", Node: "p3", Err: cause}
	got := e.Error()
	for _, want := range []string{"stage condense", "rule H2-min-cut", "node p3", "boom"} {
		if !strings.Contains(got, want) {
			t.Errorf("Error() = %q, missing %q", got, want)
		}
	}
	if !errors.Is(e, cause) {
		t.Error("errors.Is must see through the taxonomy wrapper")
	}
}

func TestWrapPreservesInnermostClassification(t *testing.T) {
	inner := &Error{Stage: "map", Rule: "importance", Err: errors.New("no node")}
	outer := Wrap("condense", "H1", "", inner)
	var got *Error
	if !errors.As(outer, &got) {
		t.Fatal("Wrap lost the *Error")
	}
	if got.Stage != "map" {
		t.Errorf("Wrap re-classified an already classified error: stage %q", got.Stage)
	}
	if Wrap("x", "", "", nil) != nil {
		t.Error("Wrap(nil) must be nil")
	}
}

func TestRunRecoversPanic(t *testing.T) {
	err := Run("condense", func() error { panic("index out of range") })
	if err == nil {
		t.Fatal("panic must surface as an error")
	}
	var se *Error
	if !errors.As(err, &se) {
		t.Fatalf("want *Error, got %T: %v", err, err)
	}
	if !errors.Is(err, ErrPanic) {
		t.Error("recovered panic must wrap ErrPanic")
	}
	if len(se.Stack) == 0 {
		t.Error("recovered panic must carry the stack")
	}
	if !strings.Contains(se.Err.Error(), "index out of range") {
		t.Errorf("panic value lost: %v", se.Err)
	}
}

func TestRunPassesThroughResults(t *testing.T) {
	if err := Run("map", func() error { return nil }); err != nil {
		t.Fatalf("nil-error body: %v", err)
	}
	cause := errors.New("infeasible")
	err := Run("map", func() error { return cause })
	if !errors.Is(err, cause) {
		t.Fatalf("cause lost: %v", err)
	}
	var se *Error
	if !errors.As(err, &se) || se.Stage != "map" {
		t.Fatalf("plain error not classified under the stage: %v", err)
	}
}

func TestCheck(t *testing.T) {
	if err := Check(context.Background(), "condense"); err != nil {
		t.Fatalf("live context: %v", err)
	}
	if err := Check(nil, "condense"); err != nil { //nolint:staticcheck // nil ctx is the uninstrumented path
		t.Fatalf("nil context: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Check(ctx, "condense")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	var se *Error
	if !errors.As(err, &se) || se.Stage != "condense" {
		t.Fatalf("cancellation not classified: %v", err)
	}
}
