// Package testutil holds shared test helpers. It must only be imported
// from _test.go files.
package testutil

import (
	"bytes"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// CheckGoroutines registers a cleanup that fails the test if the
// goroutine count has not returned to its current baseline by the end of
// the test — a hand-rolled goleak. Call it first in the test; every
// goroutine the test spawns (workers, coordinators, bus subscribers,
// chaos timers) must be joined by the time the test returns.
//
// Exits are asynchronous (a goroutine that closed its done channel may
// not have left runtime accounting yet), so the check polls with a
// deadline before declaring a leak, then dumps all stacks so the culprit
// is identifiable.
func CheckGoroutines(t *testing.T) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		var n int
		for {
			n = runtime.NumGoroutine()
			if n <= base || time.Now().After(deadline) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		if n > base {
			t.Errorf("goroutine leak: %d alive, baseline %d\n%s", n, base, stacks())
		}
	})
}

// stacks renders all goroutine stacks, trimming runtime-internal ones to
// keep failure output readable.
func stacks() string {
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	var out bytes.Buffer
	for _, g := range bytes.Split(buf, []byte("\n\n")) {
		s := string(g)
		if strings.Contains(s, "testing.") || strings.Contains(s, "runtime.goexit") && strings.Count(s, "\n") <= 3 {
			continue
		}
		fmt.Fprintf(&out, "%s\n\n", s)
	}
	return out.String()
}
