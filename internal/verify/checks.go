package verify

import (
	"errors"
	"fmt"
	"sort"
)

// Check is an executable verification test for one FCM or one sibling
// interface — the paper's "verification tests are run to ensure that its
// interactions with other FCMs do not violate the restrictions and
// requirements of a FCM" (§3). A nil error means the check passed.
type Check func() error

// ErrCheckFailed wraps verification-test failures.
var ErrCheckFailed = errors.New("verify: verification check failed")

// RegisterCheck attaches an executable check to an FCM name; it runs
// whenever that FCM appears in a retest set. Multiple checks per FCM
// accumulate.
func (c *Certifier) RegisterCheck(fcm string, check Check) error {
	if _, err := c.h.Lookup(fcm); err != nil {
		return err
	}
	if check == nil {
		return fmt.Errorf("verify: nil check for %q", fcm)
	}
	if c.checks == nil {
		c.checks = map[string][]Check{}
	}
	c.checks[fcm] = append(c.checks[fcm], check)
	return nil
}

// RegisterInterfaceCheck attaches a check to a sibling interface label
// ("a<->b", members in name order) that runs whenever that interface
// appears in a retest set.
func (c *Certifier) RegisterInterfaceCheck(a, b string, check Check) error {
	if _, err := c.h.Lookup(a); err != nil {
		return err
	}
	if _, err := c.h.Lookup(b); err != nil {
		return err
	}
	if check == nil {
		return fmt.Errorf("verify: nil check for %q<->%q", a, b)
	}
	if b < a {
		a, b = b, a
	}
	if c.ifaceChecks == nil {
		c.ifaceChecks = map[string][]Check{}
	}
	c.ifaceChecks[a+"<->"+b] = append(c.ifaceChecks[a+"<->"+b], check)
	return nil
}

// ModifyAndVerify records a modification, recertifies per R5, and runs
// every registered check in the retest set. It returns the failures found
// (each wrapping ErrCheckFailed); the FCM stays certified only if all
// checks pass — on any failure its certification is rolled back to stale.
func (c *Certifier) ModifyAndVerify(name string) []error {
	fcms, interfaces, err := c.h.RetestSet(name)
	if err != nil {
		return []error{err}
	}
	if err := c.Modify(name); err != nil {
		return []error{err}
	}
	var failures []error
	run := func(label string, checks []Check) {
		for i, check := range checks {
			if cerr := check(); cerr != nil {
				failures = append(failures,
					fmt.Errorf("%w: %s (check %d): %v", ErrCheckFailed, label, i+1, cerr))
			}
		}
	}
	for _, f := range fcms {
		run(f, c.checks[f])
	}
	for _, iface := range interfaces {
		run(iface, c.ifaceChecks[iface])
	}
	sort.Slice(failures, func(i, j int) bool {
		return failures[i].Error() < failures[j].Error()
	})
	if len(failures) > 0 {
		// Failed verification: the modification is not certified.
		c.revision++
		c.modifiedAt[name] = c.revision
	}
	return failures
}
