// Package verify implements the verification-and-validation side of the
// framework: "Once an FCM has been created, verification tests are run to
// ensure that its interactions with other FCMs do not violate the
// restrictions and requirements of a FCM" (§3), and rule R5's
// recertification discipline — after a modification only the FCM's parent
// (with its sibling interfaces) needs retesting, which "simplifies V&V of
// FCMs at each level, by not having to consider lower levels" (§4.1).
//
// The package provides a certification ledger over a core.Hierarchy and a
// quantitative cost model comparing R5's parent-only retesting against
// naive whole-system retesting (experiment E6).
package verify

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
)

// Errors returned by the certifier.
var (
	ErrNotCertified = errors.New("verify: FCM has never been certified")
	ErrStale        = errors.New("verify: certification is stale")
)

// Certifier tracks certification state for every FCM in a hierarchy.
// The zero value is not usable; call NewCertifier.
type Certifier struct {
	h *core.Hierarchy
	// certifiedAt[name] = revision at which the FCM was last certified.
	certifiedAt map[string]int
	// revision increments on every modification event.
	revision int
	// modifiedAt[name] = revision of the FCM's last modification.
	modifiedAt map[string]int
	// Costs accumulates retest effort, measured in FCMs retested and
	// interfaces retested.
	FCMsRetested       int
	InterfacesRetested int
	// checks and ifaceChecks hold registered verification tests.
	checks      map[string][]Check
	ifaceChecks map[string][]Check
}

// NewCertifier builds a certifier over a hierarchy.
func NewCertifier(h *core.Hierarchy) *Certifier {
	return &Certifier{
		h:           h,
		certifiedAt: map[string]int{},
		modifiedAt:  map[string]int{},
	}
}

// CertifyAll performs an initial certification pass over every FCM (each
// FCM tested once; every sibling interface tested once).
func (c *Certifier) CertifyAll() {
	c.revision++
	for _, f := range c.h.All() {
		c.certifiedAt[f.Name()] = c.revision
		c.FCMsRetested++
		// Each FCM's interfaces to its (name-later) siblings.
		for _, s := range f.Siblings(c.h) {
			if f.Name() < s.Name() {
				c.InterfacesRetested++
			}
		}
	}
	c.h.ClearModified()
}

// Modify records a modification of the named FCM and re-certifies per R5:
// the FCM itself, its parent, and the interfaces with its siblings are
// retested; nothing else.
func (c *Certifier) Modify(name string) error {
	if err := c.h.MarkModified(name); err != nil {
		return err
	}
	c.revision++
	c.modifiedAt[name] = c.revision

	fcms, interfaces, err := c.h.RetestSet(name)
	if err != nil {
		return err
	}
	for _, f := range fcms {
		c.certifiedAt[f] = c.revision
		c.FCMsRetested++
	}
	c.InterfacesRetested += len(interfaces)
	c.h.ClearModified()
	return nil
}

// ModifyNaive records a modification under the whole-system baseline: the
// entire hierarchy is retested (every FCM, every sibling interface). Used
// by the E6 cost comparison.
func (c *Certifier) ModifyNaive(name string) error {
	if err := c.h.MarkModified(name); err != nil {
		return err
	}
	c.revision++
	c.modifiedAt[name] = c.revision
	c.CertifyAll()
	return nil
}

// Status reports the certification state of the named FCM.
func (c *Certifier) Status(name string) error {
	f, err := c.h.Lookup(name)
	if err != nil {
		return err
	}
	cert, ok := c.certifiedAt[f.Name()]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotCertified, name)
	}
	if mod, wasModified := c.modifiedAt[f.Name()]; wasModified && mod > cert {
		return fmt.Errorf("%w: %q modified at rev %d, certified at rev %d",
			ErrStale, name, mod, cert)
	}
	return nil
}

// RuleCheck runs the structural rule validation (R1/R2 invariants, level
// consistency) over the hierarchy and returns all violations found.
func RuleCheck(h *core.Hierarchy) []error {
	var out []error
	if err := h.Validate(); err != nil {
		out = append(out, err)
	}
	return out
}

// CostModel compares recertification effort over a sequence of
// modifications (experiment E6).
type CostModel struct {
	// R5FCMs / R5Interfaces: cumulative effort under rule R5.
	R5FCMs, R5Interfaces int
	// NaiveFCMs / NaiveInterfaces: cumulative effort retesting everything.
	NaiveFCMs, NaiveInterfaces int
	// Modifications applied.
	Modifications int
}

// Savings returns 1 − (R5 effort / naive effort), counting an FCM retest
// and an interface retest equally; 0 when no work happened.
func (m CostModel) Savings() float64 {
	r5 := m.R5FCMs + m.R5Interfaces
	naive := m.NaiveFCMs + m.NaiveInterfaces
	if naive == 0 {
		return 0
	}
	return 1 - float64(r5)/float64(naive)
}

// CompareCosts applies the same modification sequence to two identically
// built hierarchies — one recertifying per R5, one naively — and returns
// the cumulative cost comparison. build must construct a fresh hierarchy
// on each call; mods lists the FCM names modified in order.
func CompareCosts(build func() (*core.Hierarchy, error), mods []string) (CostModel, error) {
	var m CostModel
	hr5, err := build()
	if err != nil {
		return m, err
	}
	hnaive, err := build()
	if err != nil {
		return m, err
	}
	cr5 := NewCertifier(hr5)
	cnaive := NewCertifier(hnaive)
	cr5.CertifyAll()
	cnaive.CertifyAll()
	// Initial certification costs are identical; compare marginal costs.
	cr5.FCMsRetested, cr5.InterfacesRetested = 0, 0
	cnaive.FCMsRetested, cnaive.InterfacesRetested = 0, 0

	for _, name := range mods {
		if err := cr5.Modify(name); err != nil {
			return m, err
		}
		if err := cnaive.ModifyNaive(name); err != nil {
			return m, err
		}
		m.Modifications++
	}
	m.R5FCMs, m.R5Interfaces = cr5.FCMsRetested, cr5.InterfacesRetested
	m.NaiveFCMs, m.NaiveInterfaces = cnaive.FCMsRetested, cnaive.InterfacesRetested
	return m, nil
}

// StaleSet returns the names of FCMs whose certification is stale or
// missing, sorted. A freshly certified hierarchy returns nothing.
func (c *Certifier) StaleSet() []string {
	var out []string
	for _, f := range c.h.All() {
		if err := c.Status(f.Name()); err != nil {
			out = append(out, f.Name())
		}
	}
	sort.Strings(out)
	return out
}
