package verify

import (
	"errors"
	"testing"

	"repro/internal/attrs"
	"repro/internal/core"
)

// buildTree builds: proc1{taskA{f1,f2}, taskB{f3}}, proc2{taskC{f4}}.
func buildTree() (*core.Hierarchy, error) {
	h := core.NewHierarchy()
	type step struct {
		fn func() error
	}
	steps := []func() error{
		func() error { _, err := h.AddProcess("proc1", attrs.Set{}); return err },
		func() error { _, err := h.AddTask("proc1", "taskA", attrs.Set{}); return err },
		func() error { _, err := h.AddProcedure("taskA", "f1", attrs.Set{}, true); return err },
		func() error { _, err := h.AddProcedure("taskA", "f2", attrs.Set{}, true); return err },
		func() error { _, err := h.AddTask("proc1", "taskB", attrs.Set{}); return err },
		func() error { _, err := h.AddProcedure("taskB", "f3", attrs.Set{}, true); return err },
		func() error { _, err := h.AddProcess("proc2", attrs.Set{}); return err },
		func() error { _, err := h.AddTask("proc2", "taskC", attrs.Set{}); return err },
		func() error { _, err := h.AddProcedure("taskC", "f4", attrs.Set{}, true); return err },
	}
	for _, s := range steps {
		if err := s(); err != nil {
			return nil, err
		}
	}
	return h, nil
}

func mustTree(t *testing.T) *core.Hierarchy {
	t.Helper()
	h, err := buildTree()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestCertifyAllThenStatus(t *testing.T) {
	h := mustTree(t)
	c := NewCertifier(h)
	if err := c.Status("f1"); !errors.Is(err, ErrNotCertified) {
		t.Errorf("pre-cert status = %v, want ErrNotCertified", err)
	}
	c.CertifyAll()
	if err := c.Status("f1"); err != nil {
		t.Errorf("post-cert status = %v", err)
	}
	if got := c.StaleSet(); len(got) != 0 {
		t.Errorf("stale after CertifyAll: %v", got)
	}
	// 9 FCMs certified.
	if c.FCMsRetested != 9 {
		t.Errorf("FCMs retested = %d, want 9", c.FCMsRetested)
	}
	// Sibling interfaces: f1-f2 (1), taskA-taskB (1), proc1-proc2 (1) = 3.
	if c.InterfacesRetested != 3 {
		t.Errorf("interfaces retested = %d, want 3", c.InterfacesRetested)
	}
}

func TestModifyR5RetestsParentOnly(t *testing.T) {
	h := mustTree(t)
	c := NewCertifier(h)
	c.CertifyAll()
	before := c.FCMsRetested
	if err := c.Modify("f1"); err != nil {
		t.Fatal(err)
	}
	// R5: retest f1 and taskA only (2 FCMs) plus the f1<->f2 interface.
	if got := c.FCMsRetested - before; got != 2 {
		t.Errorf("marginal FCM retests = %d, want 2", got)
	}
	if err := c.Status("f1"); err != nil {
		t.Errorf("f1 status after modify: %v", err)
	}
	if err := c.Modify("ghost"); err == nil {
		t.Error("modifying unknown FCM accepted")
	}
}

func TestStatusStaleness(t *testing.T) {
	h := mustTree(t)
	c := NewCertifier(h)
	c.CertifyAll()
	// Manually mark a modification without recertification.
	c.revision++
	c.modifiedAt["f1"] = c.revision
	if err := c.Status("f1"); !errors.Is(err, ErrStale) {
		t.Errorf("status = %v, want ErrStale", err)
	}
	stale := c.StaleSet()
	if len(stale) != 1 || stale[0] != "f1" {
		t.Errorf("stale set = %v", stale)
	}
	if err := c.Status("nope"); err == nil {
		t.Error("status of unknown FCM succeeded")
	}
}

func TestRuleCheckCleanTree(t *testing.T) {
	h := mustTree(t)
	if errs := RuleCheck(h); len(errs) != 0 {
		t.Errorf("violations on clean tree: %v", errs)
	}
}

func TestCompareCostsR5Saves(t *testing.T) {
	mods := []string{"f1", "f3", "f4", "f2", "f1", "taskA"}
	m, err := CompareCosts(buildTree, mods)
	if err != nil {
		t.Fatal(err)
	}
	if m.Modifications != len(mods) {
		t.Errorf("modifications = %d", m.Modifications)
	}
	if m.R5FCMs >= m.NaiveFCMs {
		t.Errorf("R5 FCM cost %d not below naive %d", m.R5FCMs, m.NaiveFCMs)
	}
	s := m.Savings()
	if s <= 0 || s >= 1 {
		t.Errorf("savings = %g, want in (0,1)", s)
	}
	// Naive cost: 9 FCMs + 3 interfaces per modification.
	if m.NaiveFCMs != 9*len(mods) {
		t.Errorf("naive FCMs = %d, want %d", m.NaiveFCMs, 9*len(mods))
	}
}

func TestCompareCostsErrors(t *testing.T) {
	if _, err := CompareCosts(buildTree, []string{"ghost"}); err == nil {
		t.Error("unknown modification target accepted")
	}
	bad := func() (*core.Hierarchy, error) { return nil, errors.New("boom") }
	if _, err := CompareCosts(bad, nil); err == nil {
		t.Error("builder error swallowed")
	}
}

func TestSavingsZeroWhenNoWork(t *testing.T) {
	var m CostModel
	if m.Savings() != 0 {
		t.Errorf("empty savings = %g", m.Savings())
	}
}

func TestModifyNaiveRecertifiesEverything(t *testing.T) {
	h := mustTree(t)
	c := NewCertifier(h)
	c.CertifyAll()
	base := c.FCMsRetested
	if err := c.ModifyNaive("f1"); err != nil {
		t.Fatal(err)
	}
	if got := c.FCMsRetested - base; got != 9 {
		t.Errorf("naive marginal retests = %d, want 9", got)
	}
}

func TestRegisterCheckValidation(t *testing.T) {
	h := mustTree(t)
	c := NewCertifier(h)
	if err := c.RegisterCheck("ghost", func() error { return nil }); err == nil {
		t.Error("unknown FCM accepted")
	}
	if err := c.RegisterCheck("f1", nil); err == nil {
		t.Error("nil check accepted")
	}
	if err := c.RegisterInterfaceCheck("f1", "ghost", func() error { return nil }); err == nil {
		t.Error("unknown interface member accepted")
	}
	if err := c.RegisterInterfaceCheck("f1", "f2", nil); err == nil {
		t.Error("nil interface check accepted")
	}
}

func TestModifyAndVerifyRunsRetestChecks(t *testing.T) {
	h := mustTree(t)
	c := NewCertifier(h)
	c.CertifyAll()
	ran := map[string]int{}
	mustReg := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	mustReg(c.RegisterCheck("f1", func() error { ran["f1"]++; return nil }))
	mustReg(c.RegisterCheck("taskA", func() error { ran["taskA"]++; return nil }))
	mustReg(c.RegisterCheck("f3", func() error { ran["f3"]++; return nil })) // different task: must NOT run
	mustReg(c.RegisterInterfaceCheck("f2", "f1", func() error { ran["iface"]++; return nil }))

	failures := c.ModifyAndVerify("f1")
	if len(failures) != 0 {
		t.Fatalf("failures: %v", failures)
	}
	if ran["f1"] != 1 || ran["taskA"] != 1 || ran["iface"] != 1 {
		t.Errorf("check runs = %v", ran)
	}
	if ran["f3"] != 0 {
		t.Error("out-of-scope check ran (R5 violated)")
	}
	if err := c.Status("f1"); err != nil {
		t.Errorf("f1 not certified after clean verify: %v", err)
	}
}

func TestModifyAndVerifyFailureLeavesStale(t *testing.T) {
	h := mustTree(t)
	c := NewCertifier(h)
	c.CertifyAll()
	boom := errors.New("acceptance test failed")
	if err := c.RegisterCheck("f1", func() error { return boom }); err != nil {
		t.Fatal(err)
	}
	failures := c.ModifyAndVerify("f1")
	if len(failures) != 1 || !errors.Is(failures[0], ErrCheckFailed) {
		t.Fatalf("failures = %v", failures)
	}
	if err := c.Status("f1"); !errors.Is(err, ErrStale) {
		t.Errorf("f1 status = %v, want ErrStale", err)
	}
}

func TestModifyAndVerifyUnknownFCM(t *testing.T) {
	h := mustTree(t)
	c := NewCertifier(h)
	if failures := c.ModifyAndVerify("ghost"); len(failures) != 1 {
		t.Errorf("failures = %v", failures)
	}
}
