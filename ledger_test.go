package depint

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/ledger"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden ledger reports under docs/ledger")

// workedExampleLedger integrates the paper's worked example with a ledger
// attached — the fixture every acceptance test here reads from.
func workedExampleLedger(t *testing.T, opts ...Option) *Ledger {
	t.Helper()
	led := NewLedger("test")
	res, err := Integrate(PaperExample(), append([]Option{WithLedger(led)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignment == nil {
		t.Fatal("no assignment")
	}
	return led
}

// TestLedgerExplainsWorkedExample: the ledger must answer the paper's
// p1..p8 colocation question — why p3 and p5 share hw5 — with the recorded
// merge rule, the Eq. (4) mutual influence of 0.76, and the placement cost.
func TestLedgerExplainsWorkedExample(t *testing.T) {
	led := workedExampleLedger(t)
	if h := led.Header(); h.System != "icdcs98-worked-example" || h.Fingerprint == "" {
		t.Fatalf("header not stamped: %+v", h)
	}
	exp, err := ExplainPair(led, "p3", "p5")
	if err != nil {
		t.Fatal(err)
	}
	text := exp.String()
	for _, want := range []string{
		"merge H1",         // the recorded rule
		"0.76",             // the Eq. (4) mutual influence of the joining merge
		"{p3a,p4,p5}",      // the cluster the merge produced
		"colocated on hw5", // the placement answer
		"cost 0.4",         // the placement cost
		"beat hw6",         // the alternative it beat
		"never merged",     // the p3b replica went elsewhere
	} {
		if !strings.Contains(text, want) {
			t.Errorf("explanation missing %q:\n%s", want, text)
		}
	}
}

// TestLedgerIdenticalRunsProduceNoDivergence: determinism is the ledger's
// core contract — same spec, same options, byte-identical ledger, empty diff.
func TestLedgerIdenticalRunsProduceNoDivergence(t *testing.T) {
	a := workedExampleLedger(t)
	b := workedExampleLedger(t)

	var bufA, bufB bytes.Buffer
	if err := a.WriteJSONL(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSONL(&bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatal("two identical runs serialized different ledgers")
	}

	d, err := LedgerDiff(a, b, LedgerDiffConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Divergent() {
		t.Fatalf("identical runs diverged:\n%s", d.String())
	}
	if !d.FingerprintMatch {
		t.Error("identical runs have different config fingerprints")
	}
}

// TestLedgerPerturbedRunNamesFirstDivergence: a perturbed spec must be
// caught at the first decision that differs, not just in the final metrics.
func TestLedgerPerturbedRunNamesFirstDivergence(t *testing.T) {
	base := workedExampleLedger(t)

	sys := PaperExample()
	for i := range sys.Processes {
		if sys.Processes[i].Name == "p5" {
			sys.Processes[i].Criticality += 2 // mis-estimated criticality
		}
	}
	led := NewLedger("test")
	if _, err := Integrate(sys, WithLedger(led)); err != nil {
		t.Fatal(err)
	}

	d, err := LedgerDiff(base, led, LedgerDiffConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Divergent() {
		t.Fatal("perturbed run did not diverge")
	}
	if d.FingerprintMatch {
		t.Error("perturbed spec kept the same fingerprint")
	}
	fd := d.FirstDivergence
	if fd == nil {
		t.Fatal("no first divergence identified")
	}
	if fd.Old == nil || fd.Old.Kind != ledger.KindPartition || fd.Old.A != "p5" {
		t.Errorf("first divergence should be p5's partition record, got %+v", fd.Old)
	}
	if !strings.Contains(d.String(), "first divergent decision") {
		t.Errorf("diff rendering does not name the divergence:\n%s", d.String())
	}
}

// TestLedgerRaceSplicesOnlyWinner: under WithRaceStrategies the ledger
// must contain exactly one race record and only the winning strategy's
// merges — losers' scratch ledgers are dropped.
func TestLedgerRaceSplicesOnlyWinner(t *testing.T) {
	led := NewLedger("test")
	res, err := Integrate(PaperExample(), WithLedger(led),
		WithStrategy(H1), WithFallback(H2, H3), WithRaceStrategies())
	if err != nil {
		t.Fatal(err)
	}
	races, merges := 0, 0
	winAttempt := -1
	for _, r := range led.Records() {
		if r.Kind == ledger.KindRace {
			races++
			winAttempt = r.Attempt
			if r.Rule != res.Strategy.String() {
				t.Errorf("race record names %s, result used %s", r.Rule, res.Strategy)
			}
		}
	}
	if races != 1 {
		t.Fatalf("want exactly 1 race record, got %d", races)
	}
	// Every merge must carry the winning contender's attempt number —
	// losers' scratch ledgers never reach the run ledger.
	for _, r := range led.Records() {
		if r.Kind == ledger.KindMerge {
			merges++
			if r.Attempt != winAttempt {
				t.Errorf("merge from losing contender leaked into ledger: %+v", r)
			}
		}
	}
	if merges == 0 {
		t.Error("winner's merges were not spliced into the ledger")
	}
	// The race's degradations must be mirrored as degrade records.
	degrades := 0
	for _, r := range led.Records() {
		if r.Kind == ledger.KindDegrade {
			degrades++
		}
	}
	if degrades != len(res.Degradations) {
		t.Errorf("ledger has %d degrade records, result has %d degradations",
			degrades, len(res.Degradations))
	}
}

// TestLedgerDegradeRecordsOnFallback: a failing first strategy must leave
// a degrade record naming the abandoned strategy and the one that took over.
func TestLedgerDegradeRecordsOnFallback(t *testing.T) {
	// Strategy(42) fails deterministically ("unknown strategy"), degrading
	// to H1 — the same fixture TestFallbackChainRecordsDegradation uses.
	bogus := Strategy(42)
	led := NewLedger("test")
	res, err := Integrate(PaperExample(), WithLedger(led),
		WithStrategy(bogus), WithFallback(H1))
	if err != nil {
		t.Fatalf("fallback run failed: %v", err)
	}
	var degrades []ledger.Record
	for _, r := range led.Records() {
		if r.Kind == ledger.KindDegrade {
			degrades = append(degrades, r)
		}
	}
	if len(degrades) != len(res.Degradations) || len(degrades) != 1 {
		t.Fatalf("ledger has %d degrade records, result has %d degradations",
			len(degrades), len(res.Degradations))
	}
	d := degrades[0]
	if d.Rule != bogus.String() || d.Result != "H1" || d.Stage != "condense" {
		t.Errorf("degrade record should name %s -> H1 in condense: %+v", bogus, d)
	}
	if !strings.Contains(d.Detail, "unknown strategy") {
		t.Errorf("degrade detail %q does not carry the failure reason", d.Detail)
	}
	// The winning attempt's merges (H1, attempt 2) drive Explain, so the
	// lineage still answers despite the failed first attempt.
	if _, err := ExplainPair(led, "p3", "p5"); err != nil {
		t.Errorf("Explain after fallback: %v", err)
	}
}

// TestLedgerGoldenReports locks the Markdown and HTML report rendering of
// the worked example. Regenerate with `go test -run Golden -update .`.
func TestLedgerGoldenReports(t *testing.T) {
	led := workedExampleLedger(t)

	var md, html bytes.Buffer
	if err := WriteLedgerReport(&md, led, false); err != nil {
		t.Fatal(err)
	}
	if err := WriteLedgerReport(&html, led, true); err != nil {
		t.Fatal(err)
	}

	check := func(path string, got []byte) {
		t.Helper()
		if *updateGolden {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, got, 0o644); err != nil {
				t.Fatal(err)
			}
			return
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("golden file missing (run `go test -run Golden -update .`): %v", err)
		}
		if !bytes.Equal(want, got) {
			t.Errorf("%s drifted from the golden file; run `go test -run Golden -update .` and review the diff", path)
		}
	}
	check(filepath.Join("docs", "ledger", "worked-example.md"), md.Bytes())
	check(filepath.Join("docs", "ledger", "worked-example.html"), html.Bytes())

	// The golden Markdown must carry the worked example's headline facts.
	text := md.String()
	for _, want := range []string{"0.76", "{p3a,p4,p5}", "hw5", "containment"} {
		if !strings.Contains(text, want) {
			t.Errorf("golden report missing %q", want)
		}
	}
	// The HTML must be self-contained: no external scripts, styles or URLs.
	h := html.String()
	for _, banned := range []string{"<script src", "<link rel", "http://", "https://"} {
		if strings.Contains(h, banned) {
			t.Errorf("golden HTML is not self-contained: found %q", banned)
		}
	}
}
