package depint

import (
	"fmt"

	"repro/internal/estimate"
	"repro/internal/spec"
)

// Measurement is the result of an influence-measurement campaign over a
// system specification.
type Measurement struct {
	// System is a copy of the input with every influence weight replaced
	// by its measured value (edges that could not be observed keep weight
	// 0 and are dropped).
	System *System
	// MeanAbsError and MaxAbsError compare measured weights against the
	// specification's declared ones.
	MeanAbsError float64
	MaxAbsError  float64
	// Trials echoes the campaign size.
	Trials int
}

// MeasureInfluence runs the paper's deferred measurement loop end to end
// (§4.2.1 / §7): a seeded fault-injection campaign over the system's
// process-level influence graph estimates every edge's transmission
// probability, and a new specification is built from the measurements.
// Feeding the result back into Integrate closes the measure → integrate
// loop; experiment E10 quantifies how many trials that takes.
func MeasureInfluence(sys *System, trials int, seed uint64) (*Measurement, error) {
	if sys == nil {
		return nil, ErrNilSystem
	}
	if err := sys.Validate(); err != nil {
		return nil, fmt.Errorf("depint: %w", err)
	}
	g, err := sys.Graph()
	if err != nil {
		return nil, fmt.Errorf("depint: %w", err)
	}
	res, err := estimate.Run(estimate.Config{Truth: g, Trials: trials, Seed: seed})
	if err != nil {
		return nil, fmt.Errorf("depint: measure: %w", err)
	}
	measured := &System{
		Name:      sys.Name + "+measured",
		Processes: append([]Process(nil), sys.Processes...),
		HWNodes:   sys.HWNodes,
	}
	for _, e := range res.Edges {
		if e.Estimated <= 0 {
			continue
		}
		w := e.Estimated
		if w > 1 {
			w = 1
		}
		measured.Influences = append(measured.Influences, spec.Influence{
			From: e.From, To: e.To, Weight: w,
		})
	}
	if err := measured.Validate(); err != nil {
		return nil, fmt.Errorf("depint: measured system invalid: %w", err)
	}
	return &Measurement{
		System:       measured,
		MeanAbsError: res.MeanAbsError,
		MaxAbsError:  res.MaxAbsError,
		Trials:       trials,
	}, nil
}
