package depint

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/cluster"
	"repro/internal/hw"
	"repro/internal/ledger"
	"repro/internal/mapping"
	"repro/internal/obs"
)

// serialAttempts runs the fallback chain the classic way: one strategy at
// a time, each on its own clone of the replicated graph, recording every
// abandoned strategy as a degradation. It returns nil after the first
// success, or the last attempt's error once the chain is exhausted (or the
// run's context died — the caller distinguishes via ctx.Err()).
func serialAttempts(ctx context.Context, o *options, root *obs.Span, res *Result,
	sys *System, exp *cluster.Expansion, platform *hw.Platform, req mapping.Requirements,
	chain []Strategy) error {

	var lastErr error
	for i, strat := range chain {
		attemptCtx := ctx
		var cancel context.CancelFunc
		if o.attemptTimeout > 0 {
			attemptCtx, cancel = context.WithTimeout(ctx, o.attemptTimeout)
		}
		work := exp.Graph
		if len(chain) > 1 {
			work = exp.Graph.Clone()
		}
		err := integrateAttempt(attemptCtx, o, root, res, sys, exp, platform, req, strat, work, i, o.ledger)
		if cancel != nil {
			cancel()
		}
		if err == nil {
			res.Strategy = strat
			return nil
		}
		lastErr = err
		if ctx.Err() != nil {
			// The run itself is cancelled or out of time: no fallback.
			return err
		}
		if i+1 < len(chain) {
			deg := Degradation{Stage: stageOf(err, "condense"), Strategy: strat, Reason: err.Error()}
			res.Degradations = append(res.Degradations, deg)
			o.ledger.Append(ledger.Record{
				Kind: ledger.KindDegrade, Stage: deg.Stage, Rule: strat.String(),
				Result: chain[i+1].String(), Detail: deg.Reason, Attempt: i + 1,
			})
			root.Event("degrade",
				obs.String("stage", deg.Stage),
				obs.String("from", strat.String()),
				obs.String("to", chain[i+1].String()),
				obs.String("reason", deg.Reason))
		}
	}
	return lastErr
}

// raceAttempts runs every strategy of the fallback chain concurrently — a
// heuristic portfolio race. Each attempt gets its own clone of the
// replicated graph and its own scratch Result, so the contenders share
// nothing mutable; the first error-free finisher wins, the shared race
// context cancels the rest, and every loser is recorded as a Degradation
// in chain order. The winning stage outputs are exactly what a serial run
// of the winning strategy would have produced.
//
// Returns (lastErr, fatal): fatal is non-nil only when the run's own
// context died (no degradation semantics apply); lastErr is non-nil when
// every contender failed on its own merits, and carries the last chain
// member's error to mirror serial exhaustion.
func raceAttempts(ctx context.Context, o *options, root *obs.Span, res *Result,
	sys *System, exp *cluster.Expansion, platform *hw.Platform, req mapping.Requirements,
	chain []Strategy) (lastErr, fatal error) {

	raceCtx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()

	type outcome struct {
		idx     int
		scratch *Result
		led     *ledger.Ledger
		err     error
	}
	results := make(chan outcome, len(chain))
	var wg sync.WaitGroup
	root.Event("race_start", obs.Int("contenders", len(chain)))
	for i, strat := range chain {
		wg.Add(1)
		go func(i int, strat Strategy) {
			defer wg.Done()
			attemptCtx := raceCtx
			var cancel context.CancelFunc
			if o.attemptTimeout > 0 {
				attemptCtx, cancel = context.WithTimeout(raceCtx, o.attemptTimeout)
				defer cancel()
			}
			scratch := &Result{}
			// Contenders record onto private scratch ledgers; only the
			// winner's records are spliced into the run ledger, so the
			// provenance stays deterministic despite the race.
			var scratchLed *ledger.Ledger
			if o.ledger != nil {
				scratchLed = ledger.New(ledger.Header{})
			}
			err := integrateAttempt(attemptCtx, o, root, scratch, sys, exp, platform, req,
				strat, exp.Graph.Clone(), i, scratchLed)
			results <- outcome{idx: i, scratch: scratch, led: scratchLed, err: err}
		}(i, strat)
	}

	// Collect every contender (no goroutine leaks); the first error-free
	// outcome wins and cancels the stragglers.
	outcomes := make([]outcome, len(chain))
	winner := -1
	for range chain {
		oc := <-results
		outcomes[oc.idx] = oc
		if oc.err == nil && winner < 0 && ctx.Err() == nil {
			winner = oc.idx
			cancelAll()
		}
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		// The run itself died. Surface a contender's error (they all saw
		// the cancellation), preferring one that wraps the context error.
		for _, oc := range outcomes {
			if oc.err != nil {
				return nil, oc.err
			}
		}
		return nil, stageOfErr("condense", err)
	}

	if winner < 0 {
		// Exhaustion: every contender failed independently. Mirror the
		// serial chain — degradations for all but the last strategy, the
		// last one's error reported.
		for i, oc := range outcomes[:len(outcomes)-1] {
			deg := Degradation{Stage: stageOf(oc.err, "condense"), Strategy: chain[i], Reason: oc.err.Error()}
			res.Degradations = append(res.Degradations, deg)
			o.ledger.Append(ledger.Record{
				Kind: ledger.KindDegrade, Stage: deg.Stage, Rule: chain[i].String(),
				Detail: deg.Reason, Attempt: i + 1,
			})
			root.Event("degrade",
				obs.String("stage", deg.Stage),
				obs.String("from", chain[i].String()),
				obs.String("reason", deg.Reason))
		}
		return outcomes[len(outcomes)-1].err, nil
	}

	// Install the winner's stage outputs and record the losers, in chain
	// order, distinguishing genuine failures from race cancellations.
	win := outcomes[winner]
	res.Condensed = win.scratch.Condensed
	res.Trace = win.scratch.Trace
	res.Assignment = win.scratch.Assignment
	res.RefinementMoves = win.scratch.RefinementMoves
	res.Strategy = chain[winner]
	if o.ledger != nil {
		o.ledger.Append(ledger.Record{
			Kind: ledger.KindRace, Stage: "condense", Rule: chain[winner].String(),
			Detail:  fmt.Sprintf("portfolio race, %d contenders", len(chain)),
			Attempt: winner + 1,
		})
		o.ledger.AppendAll(win.led.Records())
	}
	root.Event("race_won",
		obs.String("strategy", chain[winner].String()),
		obs.Int("contenders", len(chain)))
	for i, oc := range outcomes {
		if i == winner {
			continue
		}
		// A contender that failed on its own merits keeps its error; one
		// that was cancelled (or finished too late) just lost the race.
		reason := fmt.Sprintf("lost race to %s", chain[winner])
		if oc.err != nil && !isCancellation(oc.err) {
			reason = oc.err.Error()
		}
		deg := Degradation{Stage: stageOf(oc.err, "condense"), Strategy: chain[i], Reason: reason}
		res.Degradations = append(res.Degradations, deg)
		o.ledger.Append(ledger.Record{
			Kind: ledger.KindDegrade, Stage: deg.Stage, Rule: chain[i].String(),
			Result: chain[winner].String(), Detail: reason, Attempt: i + 1,
		})
		root.Event("degrade",
			obs.String("stage", deg.Stage),
			obs.String("from", chain[i].String()),
			obs.String("to", chain[winner].String()),
			obs.String("reason", deg.Reason))
	}
	return nil, nil
}

// isCancellation reports whether err stems from context cancellation or
// deadline expiry — the signature of a contender that lost the race rather
// than failed on its own.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// stageOfErr wraps a bare context error in the stage taxonomy so race
// cancellation surfaces like every other pipeline abort.
func stageOfErr(stageName string, err error) error {
	return &StageError{Stage: stageName, Err: err}
}
