package depint

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/experiments"
)

// TestRaceStrategiesProperty: the portfolio race must return a result some
// serial chain member would also have produced — no invented placements.
// Whoever wins, rerunning that strategy alone serially must reproduce the
// winner's assignment, trace, and report exactly.
func TestRaceStrategiesProperty(t *testing.T) {
	chain := []Strategy{H1, H2, H3, Criticality}
	for round := 0; round < 5; round++ {
		res, err := Integrate(PaperExample(),
			WithStrategy(chain[0]), WithFallback(chain[1:]...), WithRaceStrategies())
		if err != nil {
			t.Fatalf("round %d: race failed: %v", round, err)
		}
		found := false
		for _, s := range chain {
			if res.Strategy == s {
				found = true
			}
		}
		if !found {
			t.Fatalf("round %d: winner %v is not a chain member", round, res.Strategy)
		}
		serial, err := Integrate(PaperExample(), WithStrategy(res.Strategy))
		if err != nil {
			t.Fatalf("round %d: serial rerun of winner %v failed: %v", round, res.Strategy, err)
		}
		if !reflect.DeepEqual(res.Assignment, serial.Assignment) {
			t.Errorf("round %d: race assignment differs from serial %v run", round, res.Strategy)
		}
		if !reflect.DeepEqual(res.Trace, serial.Trace) {
			t.Errorf("round %d: race trace differs from serial %v run", round, res.Strategy)
		}
		if !reflect.DeepEqual(res.Report, serial.Report) {
			t.Errorf("round %d: race report differs from serial %v run", round, res.Strategy)
		}
	}
}

// TestRaceStrategiesRecordsLosers: every non-winning contender appears in
// Degradations, in chain order, reason distinguishing genuine failures
// from mere race losses.
func TestRaceStrategiesRecordsLosers(t *testing.T) {
	chain := []Strategy{H1, H2, H3}
	res, err := Integrate(PaperExample(),
		WithStrategy(chain[0]), WithFallback(chain[1:]...), WithRaceStrategies())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Degradations) != len(chain)-1 {
		t.Fatalf("Degradations = %d entries, want %d: %v",
			len(res.Degradations), len(chain)-1, res.Degradations)
	}
	losers := map[Strategy]bool{}
	prevIdx := -1
	for _, d := range res.Degradations {
		if d.Strategy == res.Strategy {
			t.Errorf("winner %v recorded as degradation", d.Strategy)
		}
		losers[d.Strategy] = true
		idx := -1
		for i, s := range chain {
			if s == d.Strategy {
				idx = i
			}
		}
		if idx <= prevIdx {
			t.Errorf("degradations out of chain order: %v", res.Degradations)
		}
		prevIdx = idx
	}
	if len(losers) != len(chain)-1 {
		t.Errorf("loser set = %v, want the %d non-winners", losers, len(chain)-1)
	}
}

// TestRaceStrategiesFailedContenderKeepsReason: a contender that breaks on
// its own (bogus strategy) must surface its real failure, not a race loss.
// The winner is SeparationGuided — slower than the bogus contender's fast
// failure — and GOMAXPROCS is raised to 2 so both contenders truly run
// concurrently even on a single-CPU runner (otherwise the scheduler may
// park the bogus goroutine until the winner has already cancelled the
// race, which legitimately turns its failure into a race loss).
func TestRaceStrategiesFailedContenderKeepsReason(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(2))
	sys, err := experiments.Synthesize(experiments.SynthConfig{
		Processes: 48, EdgesPerNode: 2.5, ReplicatedFraction: 0.25,
		Seed: 4242, HWNodes: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	bogus := Strategy(42)
	res, err := Integrate(sys,
		WithStrategy(bogus), WithFallback(SeparationGuided), WithRaceStrategies())
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != SeparationGuided {
		t.Fatalf("Strategy = %v, want SeparationGuided", res.Strategy)
	}
	if len(res.Degradations) != 1 {
		t.Fatalf("Degradations = %v, want exactly one", res.Degradations)
	}
	d := res.Degradations[0]
	if d.Strategy != bogus {
		t.Errorf("degraded strategy = %v, want %v", d.Strategy, bogus)
	}
	if !strings.Contains(d.Reason, "unknown strategy") {
		t.Errorf("reason %q does not carry the contender's own failure", d.Reason)
	}
}

// TestRaceStrategiesExhausted: when every contender fails on its own
// merits the race mirrors serial exhaustion — ErrFallbackExhausted inside
// a StageError naming the last chain member.
func TestRaceStrategiesExhausted(t *testing.T) {
	res, err := Integrate(PaperExample(),
		WithStrategy(Strategy(42)), WithFallback(Strategy(43)), WithRaceStrategies())
	if res != nil {
		t.Error("exhausted race returned a result")
	}
	if !errors.Is(err, ErrFallbackExhausted) {
		t.Fatalf("err = %v, want wrapping ErrFallbackExhausted", err)
	}
	var se *StageError
	if !errors.As(err, &se) {
		t.Fatalf("err = %T, want *StageError", err)
	}
	if se.Rule != Strategy(43).String() {
		t.Errorf("Rule = %q, want the last chain member", se.Rule)
	}
}

// TestRaceStrategiesCancelledRun: a dead parent context aborts the whole
// race — classified cancellation, never exhaustion.
func TestRaceStrategiesCancelledRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := IntegrateContext(ctx, PaperExample(),
		WithStrategy(H2), WithFallback(H1, H3), WithRaceStrategies())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapping context.Canceled", err)
	}
	if errors.Is(err, ErrFallbackExhausted) {
		t.Error("race cancellation was treated as chain exhaustion")
	}
}

// TestRaceStrategiesCancelStress cancels IntegrateContext mid-race from a
// competing goroutine at staggered points. Run under -race (make check
// does) this is the torture test for the contenders' shared telemetry and
// cancellation paths: whatever the timing, the pipeline returns either a
// complete result or a classified cancellation — never a partial result,
// a panic, or a data race.
func TestRaceStrategiesCancelStress(t *testing.T) {
	delays := []time.Duration{0, 10 * time.Microsecond, 100 * time.Microsecond,
		500 * time.Microsecond, 2 * time.Millisecond, 10 * time.Millisecond}
	var wg sync.WaitGroup
	for round := 0; round < 3; round++ {
		for _, d := range delays {
			ctx, cancel := context.WithCancel(context.Background())
			wg.Add(1)
			go func(d time.Duration) {
				defer wg.Done()
				time.Sleep(d)
				cancel()
			}(d)
			res, err := IntegrateContext(ctx, PaperExample(),
				WithStrategy(SeparationGuided), WithFallback(H1, H2, H3),
				WithRaceStrategies(), WithWorkers(4))
			switch {
			case err == nil:
				if res == nil || res.Assignment == nil || res.Condensed == nil {
					t.Fatal("success with incomplete result")
				}
			case errors.Is(err, context.Canceled):
				if res != nil {
					t.Fatal("cancelled race returned a partial result")
				}
			default:
				t.Fatalf("unexpected failure class: %v", err)
			}
			cancel()
		}
	}
	wg.Wait()
}

// TestWithWorkersBitIdentical: the worker pool behind the influence stage
// must not change a single bit of the pipeline output.
func TestWithWorkersBitIdentical(t *testing.T) {
	want, err := Integrate(PaperExample(), WithStrategy(SeparationGuided), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 7} {
		got, err := Integrate(PaperExample(), WithStrategy(SeparationGuided), WithWorkers(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got.Separation, want.Separation) {
			t.Errorf("workers=%d separation matrix differs", workers)
		}
		if !reflect.DeepEqual(got.Assignment, want.Assignment) {
			t.Errorf("workers=%d assignment differs", workers)
		}
		if !reflect.DeepEqual(got.Report, want.Report) {
			t.Errorf("workers=%d report differs", workers)
		}
	}
}
