package depint

import (
	"io"

	"repro/internal/ledger"
)

// Re-exported decision-provenance types (see internal/ledger). A Ledger
// records every decision the pipeline takes — partitions, Eq. (4) merges,
// replica-separation edges, degradations, placements with the
// alternatives they beat, and the final metrics snapshot — as an
// append-only, timestamp-free sequence, so two identical runs produce
// byte-identical ledgers.
type (
	// Ledger is the append-only decision-provenance log. Pass one to
	// Integrate via WithLedger; a nil *Ledger absorbs every call.
	Ledger = ledger.Ledger
	// LedgerHeader identifies the run a ledger belongs to (tool, system,
	// strategy, approach, config fingerprint).
	LedgerHeader = ledger.Header
	// LedgerRecord is one decision or measurement in a Ledger.
	LedgerRecord = ledger.Record
	// Explanation is the causal chain ExplainPair reconstructs for a pair
	// of processes: the merges that joined (or failed to join) them and
	// the placement decisions that fixed their HW nodes.
	Explanation = ledger.Explanation
	// LedgerDiffResult reports how two runs' ledgers differ: the first
	// divergent decision, placement moves, and metric regressions.
	LedgerDiffResult = ledger.DiffResult
	// LedgerDiffConfig tunes LedgerDiff's metric-regression threshold.
	LedgerDiffConfig = ledger.DiffConfig
)

// NewLedger returns an empty run ledger stamped with the current schema
// version and the given tool name. Integrate fills in the remaining
// header fields (system, strategy, approach, config fingerprint).
func NewLedger(tool string) *Ledger {
	return ledger.New(ledger.Header{Tool: tool})
}

// ReadLedger loads a ledger previously serialised with Ledger.WriteFile.
func ReadLedger(path string) (*Ledger, error) { return ledger.ReadFile(path) }

// ExplainPair reconstructs, from a run ledger, why processes a and b were
// (or were not) colocated: the Eq. (4) merge that joined them — rule,
// operands, mutual-influence score — the merge chains that built each
// side, any replica-separation edge forbidding colocation, and the
// placement decisions with the alternatives they beat. a and b may be
// base process names (p3 resolves to its replicas p3a, p3b, …) or
// replica/cluster names.
func ExplainPair(l *Ledger, a, b string) (*Explanation, error) {
	return ledger.Explain(l, a, b)
}

// LedgerDiff compares two run ledgers — typically an old and a new run of
// the same system — and reports the first decision where they diverge,
// every cluster whose placement moved, and every final metric that
// drifted beyond cfg's threshold in the worsening direction. Two ledgers
// from identical runs yield a result whose Divergent() is false.
func LedgerDiff(old, new *Ledger, cfg LedgerDiffConfig) (*LedgerDiffResult, error) {
	return ledger.Diff(old, new, cfg)
}

// WriteLedgerReport renders a run ledger as a human-readable report:
// self-contained HTML when html is true, Markdown otherwise.
func WriteLedgerReport(w io.Writer, l *Ledger, html bool) error {
	if html {
		return ledger.WriteHTML(w, l)
	}
	return ledger.WriteMarkdown(w, l)
}
