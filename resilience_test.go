package depint

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/stage"
)

func TestIntegrateContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := IntegrateContext(ctx, PaperExample())
	if res != nil {
		t.Error("cancelled run returned a partial result")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapping context.Canceled", err)
	}
	var se *StageError
	if !errors.As(err, &se) {
		t.Fatalf("err = %T, want *StageError", err)
	}
	if se.Stage == "" {
		t.Error("StageError has no stage")
	}
}

func TestIntegrateContextCancelMidCondense(t *testing.T) {
	// A context that dies mid-run: the partition and influence stages pass,
	// then the deadline lands inside condensation's cooperative checks.
	// Whatever stage it lands in, the pipeline must surface the deadline as
	// a classified StageError, never a partial result or a panic.
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond) // ensure the deadline has passed
	for _, s := range []Strategy{H1, H2, H3, Criticality, SeparationGuided} {
		res, err := IntegrateContext(ctx, PaperExample(), WithStrategy(s))
		if res != nil {
			t.Errorf("%s: expired run returned a partial result", s)
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("%s: err = %v, want wrapping context.DeadlineExceeded", s, err)
		}
		var se *StageError
		if !errors.As(err, &se) {
			t.Errorf("%s: err = %T, want *StageError", s, err)
		}
	}
}

func TestIntegrateWithTimeoutExpires(t *testing.T) {
	res, err := Integrate(PaperExample(), WithTimeout(time.Nanosecond))
	if res != nil {
		t.Error("timed-out run returned a result")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want wrapping context.DeadlineExceeded", err)
	}
}

func TestFallbackChainRecordsDegradation(t *testing.T) {
	// Strategy(42) fails deterministically ("unknown strategy"); the chain
	// must degrade to H1 and record why.
	bogus := Strategy(42)
	res, err := Integrate(PaperExample(), WithStrategy(bogus), WithFallback(H1))
	if err != nil {
		t.Fatalf("fallback run failed: %v", err)
	}
	if res.Strategy != H1 {
		t.Errorf("Strategy = %v, want H1", res.Strategy)
	}
	if len(res.Degradations) != 1 {
		t.Fatalf("Degradations = %v, want exactly one", res.Degradations)
	}
	d := res.Degradations[0]
	if d.Strategy != bogus || d.Stage != "condense" {
		t.Errorf("degradation = %+v", d)
	}
	if !strings.Contains(d.Reason, "unknown strategy") {
		t.Errorf("degradation reason %q does not name the failure", d.Reason)
	}
	if !strings.Contains(d.String(), "condense") {
		t.Errorf("String() = %q", d.String())
	}
}

func TestFallbackChainExhausted(t *testing.T) {
	res, err := Integrate(PaperExample(), WithStrategy(Strategy(42)), WithFallback(Strategy(43)))
	if res != nil {
		t.Error("exhausted chain returned a result")
	}
	if !errors.Is(err, ErrFallbackExhausted) {
		t.Fatalf("err = %v, want wrapping ErrFallbackExhausted", err)
	}
	var se *StageError
	if !errors.As(err, &se) {
		t.Fatalf("err = %T, want *StageError", err)
	}
}

func TestFallbackDoesNotRetryCancellation(t *testing.T) {
	// A dead parent context must abort the run, not walk the whole chain.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := IntegrateContext(ctx, PaperExample(),
		WithStrategy(H2), WithFallback(H1, H3, Criticality))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapping context.Canceled", err)
	}
	if errors.Is(err, ErrFallbackExhausted) {
		t.Error("cancellation was treated as chain exhaustion")
	}
}

func TestNoFallbackPreservesPlainError(t *testing.T) {
	// Without a chain, a failing strategy surfaces its own classified
	// error, not an exhaustion wrapper.
	_, err := Integrate(PaperExample(), WithStrategy(Strategy(42)))
	if err == nil {
		t.Fatal("bogus strategy succeeded")
	}
	if errors.Is(err, ErrFallbackExhausted) {
		t.Error("single-strategy failure reported as chain exhaustion")
	}
	var se *StageError
	if !errors.As(err, &se) {
		t.Fatalf("err = %T, want *StageError", err)
	}
	if se.Stage != "condense" {
		t.Errorf("Stage = %q, want condense", se.Stage)
	}
}

func TestStagePanicIsRecovered(t *testing.T) {
	// Drive the panic firewall directly: a panicking stage body must come
	// back as a *stage.Error wrapping ErrPanic with a captured stack.
	err := stage.Run("condense", func() error { panic("boom") })
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("err = %v, want wrapping ErrPanic", err)
	}
	var se *StageError
	if !errors.As(err, &se) {
		t.Fatalf("err = %T, want *StageError", err)
	}
	if len(se.Stack) == 0 {
		t.Error("recovered panic carries no stack")
	}
	if se.Stage != "condense" {
		t.Errorf("Stage = %q, want condense", se.Stage)
	}
}

func TestIntegrateContextNilContext(t *testing.T) {
	res, err := IntegrateContext(nil, PaperExample()) //nolint:staticcheck // nil ctx tolerance is the contract under test
	if err != nil {
		t.Fatalf("nil ctx run failed: %v", err)
	}
	if res == nil || res.Assignment == nil {
		t.Error("nil ctx run produced no assignment")
	}
}
