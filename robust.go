package depint

import (
	"context"
	"fmt"

	"repro/internal/obs"
	"repro/internal/robust"
	"repro/internal/spec"
	"repro/internal/stage"
)

// Re-exported robustness-certification types (see internal/robust).
type (
	// Certificate is the robustness report CertifyRobustness emits:
	// placement-stability fraction per ε, worst-case/mean escape and
	// cross-influence drift, and the most sensitive spec parameters.
	Certificate = robust.Certificate
	// RobustLevel is one ε row of a Certificate.
	RobustLevel = robust.Level
	// Sensitivity is one ranked one-at-a-time parameter probe.
	Sensitivity = robust.Sensitivity
)

// RobustnessConfig parameterises CertifyRobustness.
type RobustnessConfig struct {
	// Epsilons is the ladder of relative perturbation half-widths applied
	// to every criticality and influence weight (an influence weight is
	// the product of the paper's p_i1·p_i2·p_i3 factors, so the band
	// models their combined mis-estimation). Empty defaults to
	// {0, 0.01, 0.05, 0.10}; each value must lie in [0,1).
	Epsilons []float64
	// Samples is the perturbation-ensemble size per ε (default 20).
	Samples int
	// Seed fixes the perturbation directions and the fault-injection
	// streams, making the certificate reproducible.
	Seed uint64
	// Trials is the fault-injection budget per evaluation (default 2000).
	Trials int
	// SkipSensitivity disables the per-parameter probes (two extra
	// integrations per spec parameter).
	SkipSensitivity bool
	// Options configures every Integrate run of the ensemble (strategy,
	// approach, workers, …). WithObserver here also instruments the
	// certification itself: one "certify_robustness" span with per-level
	// events, plus robust_* metrics.
	Options []Option
	// Ctx, when non-nil, cancels the certification between evaluations.
	Ctx context.Context
}

// CertifyRobustness integrates sys, then re-integrates an ensemble of
// perturbed copies — every criticality and influence weight moved within
// ±ε relative bands — and certifies how stable the resulting placement
// is. The returned Certificate reports, per ε of the ladder, the fraction
// of the ensemble whose placement (up to HW-node relabelling) matched the
// baseline, the mean and worst-case drift of the fault-escape rate and
// the cross-HW influence, and a ranking of the spec parameters whose
// individual mis-estimation most endangers the outcome.
//
// The ensemble is nested (one perturbation direction per member, scaled
// by ε), so the stability fraction is exactly 1 at ε = 0 and
// monotonically non-increasing as ε grows.
func CertifyRobustness(sys *System, cfg RobustnessConfig) (*Certificate, error) {
	if sys == nil {
		return nil, stage.Wrap("certify", "perturb", "", ErrNilSystem)
	}
	trials := cfg.Trials
	if trials <= 0 {
		trials = 2000
	}

	var observer *obs.Observer
	var o options
	for _, opt := range cfg.Options {
		opt(&o)
	}
	observer = o.observer

	var span *obs.Span
	var reg *obs.Registry
	if observer != nil {
		span = observer.StartSpan("certify_robustness",
			obs.String("system", sys.Name),
			obs.Int("samples", cfg.Samples),
			obs.Int("trials", trials))
		defer span.End()
		reg = observer.Metrics()
	}

	// The ensemble members must not write onto the caller's ledger — only
	// the certification verdict belongs there, recorded by robust.Certify
	// itself. WithLedger(nil) last in the option list wins.
	innerOpts := cfg.Options
	if o.ledger != nil {
		innerOpts = append(append([]Option{}, cfg.Options...), WithLedger(nil))
	}
	eval := func(s *spec.System) (robust.Outcome, error) {
		res, err := Integrate(s, innerOpts...)
		if err != nil {
			return robust.Outcome{}, err
		}
		fr, err := res.InjectFaults(trials, cfg.Seed)
		if err != nil {
			return robust.Outcome{}, fmt.Errorf("depint: certify fault injection: %w", err)
		}
		return robust.Outcome{
			Placement:      robust.CanonicalPlacement(res.HWOf()),
			EscapeRate:     fr.EscapeRate(),
			CrossInfluence: res.Report.CrossInfluence,
		}, nil
	}

	return robust.Certify(sys, eval, robust.Config{
		Epsilons:        cfg.Epsilons,
		Samples:         cfg.Samples,
		Seed:            cfg.Seed,
		SkipSensitivity: cfg.SkipSensitivity,
		Span:            span,
		Metrics:         reg,
		Bus:             observer.Bus(),
		Ledger:          o.ledger,
		Ctx:             cfg.Ctx,
	})
}
