package depint

import (
	"errors"
	"testing"

	"repro/internal/obs"
	"repro/internal/sched"
)

// certCfg keeps the paper-example certification cheap: a small ensemble
// and a short fault-injection budget per evaluation.
func certCfg(seed uint64, eps ...float64) RobustnessConfig {
	return RobustnessConfig{
		Epsilons:        eps,
		Samples:         6,
		Seed:            seed,
		Trials:          200,
		SkipSensitivity: true,
	}
}

// TestCertifyRobustnessPaperExample is the acceptance property on the
// paper's worked example: stability fraction exactly 1.0 at ε=0, and
// monotonically non-increasing as ε grows — across seeds.
func TestCertifyRobustnessPaperExample(t *testing.T) {
	for _, seed := range []uint64{1, 7, 23} {
		cert, err := CertifyRobustness(PaperExample(), certCfg(seed, 0, 0.02, 0.05, 0.15))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(cert.Levels) != 4 {
			t.Fatalf("seed %d: %d levels, want 4", seed, len(cert.Levels))
		}
		if cert.Levels[0].Epsilon != 0 || cert.Levels[0].StableFraction != 1.0 {
			t.Errorf("seed %d: stability at eps=0 = %g, want exactly 1.0",
				seed, cert.Levels[0].StableFraction)
		}
		for i := 1; i < len(cert.Levels); i++ {
			if cert.Levels[i].StableFraction > cert.Levels[i-1].StableFraction {
				t.Errorf("seed %d: stability rose from %g (eps=%g) to %g (eps=%g)",
					seed, cert.Levels[i-1].StableFraction, cert.Levels[i-1].Epsilon,
					cert.Levels[i].StableFraction, cert.Levels[i].Epsilon)
			}
		}
		if cert.Baseline.Placement == "" {
			t.Errorf("seed %d: empty baseline placement", seed)
		}
		if cert.StableAt() != cert.Levels[len(cert.Levels)-1].StableFraction {
			t.Errorf("seed %d: StableAt disagrees with the last level", seed)
		}
	}
}

// TestCertifyRobustnessSensitivities: the full probe pass on the paper
// example must rank every spec parameter (8 criticalities + 13 weights).
func TestCertifyRobustnessSensitivities(t *testing.T) {
	cfg := certCfg(7, 0, 0.1)
	cfg.SkipSensitivity = false
	cfg.Samples = 2
	cert, err := CertifyRobustness(PaperExample(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cert.Sensitivities) != 21 {
		t.Fatalf("sensitivities = %d, want 21 (8 criticalities + 13 weights)",
			len(cert.Sensitivities))
	}
	for i := 1; i < len(cert.Sensitivities); i++ {
		a, b := cert.Sensitivities[i-1], cert.Sensitivities[i]
		if !a.Flipped && b.Flipped {
			t.Fatalf("flipping parameter %s ranked below non-flipping %s",
				b.Parameter, a.Parameter)
		}
	}
}

// TestCertifyRobustnessObserver: WithObserver in the options must hang a
// certify_robustness span with one robust_level event per ε.
func TestCertifyRobustnessObserver(t *testing.T) {
	defer sched.Observe(nil)
	o := obs.New()
	cfg := certCfg(7, 0, 0.05)
	cfg.Options = []Option{WithObserver(o)}
	if _, err := CertifyRobustness(PaperExample(), cfg); err != nil {
		t.Fatal(err)
	}
	var cspan *obs.Span
	for _, r := range o.Roots() {
		if r.Name() == "certify_robustness" {
			cspan = r
		}
	}
	if cspan == nil {
		t.Fatal("no certify_robustness span recorded")
	}
	levels := 0
	for _, ev := range cspan.Events() {
		if ev.Name == "robust_level" {
			levels++
		}
	}
	if levels != 2 {
		t.Errorf("robust_level events = %d, want 2", levels)
	}
}

// TestCertifyRobustnessNilSystem: the nil spec is a classified error.
func TestCertifyRobustnessNilSystem(t *testing.T) {
	if _, err := CertifyRobustness(nil, certCfg(1, 0)); !errors.Is(err, ErrNilSystem) {
		t.Errorf("err = %v, want ErrNilSystem", err)
	}
}

// TestCertifyRobustnessDeterministic: the certificate is a pure function
// of (system, config).
func TestCertifyRobustnessDeterministic(t *testing.T) {
	a, err := CertifyRobustness(PaperExample(), certCfg(7, 0, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	b, err := CertifyRobustness(PaperExample(), certCfg(7, 0, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	if a.Baseline != b.Baseline || len(a.Levels) != len(b.Levels) {
		t.Fatal("two identical certifications disagree on the baseline")
	}
	for i := range a.Levels {
		if a.Levels[i] != b.Levels[i] {
			t.Errorf("level %d differs: %+v vs %+v", i, a.Levels[i], b.Levels[i])
		}
	}
}
