package depint

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/graph"
)

// MappingRow is one line of the mapping table: a HW node and the base SW
// modules it hosts.
type MappingRow struct {
	Node    string
	Members []string
}

// MappingTable returns the assignment as (HW node, members) rows sorted by
// node name.
func (r *Result) MappingTable() []MappingRow {
	rows := make([]MappingRow, 0, len(r.Assignment))
	for clusterID, node := range r.Assignment {
		rows = append(rows, MappingRow{Node: node, Members: graph.Members(clusterID)})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Node < rows[j].Node })
	return rows
}

// Summary renders a complete integration dossier as text: the system,
// the reduction trace, the mapping, the §5.3 goodness report, influence
// cycles worth the designer's attention, and the reliability summary.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "system %q: %d processes -> %d replicas -> %d clusters on %d HW nodes\n",
		r.System.Name, len(r.System.Processes), r.Expanded.NumNodes(),
		r.Condensed.NumNodes(), r.System.HWNodes)
	fmt.Fprintf(&b, "strategy %s", r.Strategy)
	switch r.ApproachUsed {
	case ByImportance:
		b.WriteString(", assignment by importance (Approach A)")
	case Lexicographic:
		b.WriteString(", assignment lexicographic (Approach B)")
	}
	if r.RefinementMoves > 0 {
		fmt.Fprintf(&b, ", %d refinement moves", r.RefinementMoves)
	}
	b.WriteString("\n")
	if len(r.Trace) > 0 {
		b.WriteString("\nreduction trace:\n")
		for _, s := range r.Trace {
			fmt.Fprintf(&b, "  %s\n", s)
		}
	}

	b.WriteString("\nmapping (HW node <- members):\n")
	for _, row := range r.MappingTable() {
		fmt.Fprintf(&b, "  %-6s <- %s\n", row.Node, strings.Join(row.Members, ", "))
	}

	b.WriteString("\ngoodness (§5.3):\n")
	fmt.Fprintf(&b, "  constraints satisfied:    %v\n", r.Report.ConstraintsOK)
	for _, v := range r.Report.Violations {
		fmt.Fprintf(&b, "    violation: %s\n", v)
	}
	fmt.Fprintf(&b, "  containment:              %.3f (cross %.3f / internal %.3f)\n",
		r.Report.Containment, r.Report.CrossInfluence, r.Report.InternalInfluence)
	fmt.Fprintf(&b, "  max node criticality:     %.1f\n", r.Report.MaxNodeCriticality)
	fmt.Fprintf(&b, "  critical pairs colocated: %d\n", r.Report.CriticalPairsColocated)
	fmt.Fprintf(&b, "  communication cost:       %.3f\n", r.Report.CommCost)

	if cycles := r.Initial.InfluenceCycles(); len(cycles) > 0 {
		b.WriteString("\ninfluence cycles (high feedback inflates transitive coupling):\n")
		for _, c := range cycles {
			fmt.Fprintf(&b, "  {%s} two-hop feedback %.3f\n",
				strings.Join(c.Members, ","), c.TwoHopFeedback)
		}
	}

	b.WriteString("\nreliability (analytic, per-mission):\n")
	names := make([]string, 0, len(r.Reliability.ModuleReliability))
	for n := range r.Reliability.ModuleReliability {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "  %-12s %.4f\n", n, r.Reliability.ModuleReliability[n])
	}
	fmt.Fprintf(&b, "  system       %.4f (weakest: %s)\n",
		r.Reliability.SystemReliability, r.Reliability.WeakestModule)
	return b.String()
}
