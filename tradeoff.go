package depint

import (
	"fmt"
	"strings"
)

// LevelReport is one row of a tradeoff analysis: the outcome of
// integrating onto a given number of HW nodes.
type LevelReport struct {
	Target   int
	Feasible bool
	// Err explains infeasibility.
	Err error
	// Containment, MaxNodeCriticality and CommCost are the §5.3 metrics
	// at this level (valid when Feasible).
	Containment        float64
	MaxNodeCriticality float64
	CommCost           float64
}

// TradeoffResult is a full integration-level sweep — the study the paper
// defers: "this however raises the issue of tradeoffs in integrating SW
// beyond a HW resource threshold. We defer details of the tradeoff
// analysis to a later study."
type TradeoffResult struct {
	Levels []LevelReport
	// Floor is the smallest feasible target found.
	Floor int
	// Recommended is the suggested HW node count: the smallest feasible
	// target whose marginal containment gain over the next level up stays
	// above the knee threshold — integrating further buys less than it
	// costs in criticality concentration.
	Recommended int
}

// Table renders the sweep as fixed-width text.
func (t TradeoffResult) Table() string {
	var b strings.Builder
	b.WriteString("target  feasible  containment  max-crit  comm-cost\n")
	for _, l := range t.Levels {
		if !l.Feasible {
			fmt.Fprintf(&b, "%6d  %8v  %s\n", l.Target, false, l.Err)
			continue
		}
		fmt.Fprintf(&b, "%6d  %8v  %11.3f  %8.1f  %9.3f\n",
			l.Target, true, l.Containment, l.MaxNodeCriticality, l.CommCost)
	}
	fmt.Fprintf(&b, "floor=%d recommended=%d\n", t.Floor, t.Recommended)
	return b.String()
}

// TradeoffConfig parameterises AnalyzeTradeoff.
type TradeoffConfig struct {
	// MaxTarget and MinTarget bound the sweep; zero values default to the
	// replica count (fully split) down to 1.
	MaxTarget, MinTarget int
	// Knee is the marginal containment gain below which further
	// integration is not recommended (default 0.02: integrating one more
	// level must buy at least 2 percentage points of containment).
	Knee float64
	// Options are applied to every Integrate call.
	Options []Option
}

// AnalyzeTradeoff sweeps the HW-node target downward, integrating at each
// level, and recommends the level past which further integration stops
// paying: the empirical answer to the paper's closing question, "Is there
// a limit to the level of integration one should design for?"
func AnalyzeTradeoff(sys *System, cfg TradeoffConfig) (TradeoffResult, error) {
	if sys == nil {
		return TradeoffResult{}, ErrNilSystem
	}
	if err := sys.Validate(); err != nil {
		return TradeoffResult{}, fmt.Errorf("depint: %w", err)
	}
	maxT := cfg.MaxTarget
	if maxT <= 0 {
		maxT = sys.TotalReplicas()
	}
	minT := cfg.MinTarget
	if minT <= 0 {
		minT = 1
	}
	knee := cfg.Knee
	if knee <= 0 {
		knee = 0.02
	}

	res := TradeoffResult{Floor: maxT}
	// Work on a copy so the caller's HWNodes is untouched.
	work := *sys
	for target := maxT; target >= minT; target-- {
		work.HWNodes = target
		lr := LevelReport{Target: target}
		r, err := Integrate(&work, cfg.Options...)
		if err != nil {
			lr.Err = err
		} else {
			lr.Feasible = true
			lr.Containment = r.Report.Containment
			lr.MaxNodeCriticality = r.Report.MaxNodeCriticality
			lr.CommCost = r.Report.CommCost
			if target < res.Floor {
				res.Floor = target
			}
		}
		res.Levels = append(res.Levels, lr)
	}

	// Recommendation: walk from the most-split level downward; keep
	// integrating while the marginal containment gain clears the knee.
	res.Recommended = 0
	var prev *LevelReport
	for i := range res.Levels {
		l := &res.Levels[i]
		if !l.Feasible {
			continue
		}
		if prev == nil {
			res.Recommended = l.Target
			prev = l
			continue
		}
		if l.Containment-prev.Containment >= knee {
			res.Recommended = l.Target
		}
		prev = l
	}
	if res.Recommended == 0 && res.Floor <= maxT {
		res.Recommended = res.Floor
	}
	return res, nil
}
